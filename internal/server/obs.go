package server

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"themecomm/internal/engine"
	"themecomm/internal/federation"
	"themecomm/internal/obs"
	"themecomm/internal/replication"
)

// This file wires the observability layer into the HTTP surface: every route
// is registered through handle (request-ID propagation + HTTP metrics +
// access log when an Observer is configured), GET /metrics renders the
// registry in Prometheus text format, GET /api/v1/slowlog exposes the
// slow-query ring, and /healthz reports build/uptime/readiness. Engine and
// federation counters reach /metrics through scrape-time collectors sampling
// Stats() — the counters stay owned by the engine; the registry only reads
// them at render.

// handle registers one route. With an Observer configured the handler is
// wrapped in the HTTP middleware, with the registered pattern — never the raw
// path — as the route label, so metric cardinality is bounded by the route
// table.
func (s *Server) handle(route string, h http.HandlerFunc) {
	if s.metrics != nil {
		s.mux.Handle(route, s.metrics.Wrap(route, h))
		return
	}
	s.mux.HandleFunc(route, h)
}

// handleMetrics serves GET /metrics. The route is always registered so the
// API surface is uniform; without an observer it answers 404.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.obsv == nil {
		writeError(w, r, http.StatusNotFound, "metrics are not enabled on this server")
		return
	}
	s.obsv.Registry().Handler().ServeHTTP(w, r)
}

// SlowLogResponse is the payload of GET /api/v1/slowlog: the slow-query ring,
// newest first, each entry carrying the request ID and the full plan report
// of the slow execution.
type SlowLogResponse struct {
	// ThresholdMicros is the capture threshold; zero means capture is
	// disabled.
	ThresholdMicros int64 `json:"thresholdMicros"`
	// Capacity is the ring size; Total counts every capture since start, so
	// Total > Capacity means old entries have been displaced.
	Capacity int             `json:"capacity"`
	Total    uint64          `json:"total"`
	Entries  []obs.SlowQuery `json:"entries"`
}

func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.obsv == nil {
		writeError(w, r, http.StatusNotFound, "the slow-query log is not enabled on this server")
		return
	}
	sl := s.obsv.SlowLog()
	entries := sl.Entries()
	if entries == nil {
		entries = []obs.SlowQuery{}
	}
	writeJSON(w, http.StatusOK, SlowLogResponse{
		ThresholdMicros: sl.Threshold().Microseconds(),
		Capacity:        sl.Capacity(),
		Total:           sl.Total(),
		Entries:         entries,
	})
}

// HealthResponse is the payload of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	// Version is the main module's version from the embedded build info;
	// "(devel)" or empty for unstamped builds.
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"goVersion"`
	// UptimeSeconds counts from server construction.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Networks lists every served network with its readiness state; the
	// anonymous single-network tenant has an empty name.
	Networks []NetworkHealth `json:"networks"`
	// Replication reports the replication role (primary or replica), journal
	// position and replica lag; absent on a standalone server.
	Replication *replication.Status `json:"replication,omitempty"`
}

// NetworkHealth is one served network's readiness within GET /healthz.
type NetworkHealth struct {
	Name string `json:"name,omitempty"`
	// Ready reports whether the network can answer queries right now. Lazy
	// networks are ready as soon as their manifest is attached — shards load
	// on first touch.
	Ready bool `json:"ready"`
	Lazy  bool `json:"lazy,omitempty"`
	// Format is the shard encoding the network serves from: "gob" or
	// "tcbin" for lazy networks, "memory" for eager ones.
	Format string `json:"format,omitempty"`
	// Shards and ResidentShards report how much of the index is in memory;
	// ResidentBytes is the resident shards' summed memory charge (mapped
	// file size for TCBIN shards, serialized payload size for gob shards).
	Shards         int   `json:"shards"`
	ResidentShards int   `json:"residentShards"`
	ResidentBytes  int64 `json:"residentBytes,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := HealthResponse{
		Status:        "ok",
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Networks:      []NetworkHealth{},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.Version = bi.Main.Version
	}
	if s.replStatus != nil {
		st := s.replStatus()
		resp.Replication = &st
	}
	for _, ns := range s.statsByNetwork() {
		resp.Networks = append(resp.Networks, NetworkHealth{
			Name:           ns.name,
			Ready:          true,
			Lazy:           ns.st.Lazy,
			Format:         ns.st.Format,
			Shards:         ns.st.Shards,
			ResidentShards: ns.st.ResidentShards,
			ResidentBytes:  ns.st.ResidentBytes,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// namedStats is one served network's engine counters, labeled for the
// collectors below.
type namedStats struct {
	name string
	st   engine.Stats
}

// statsByNetwork snapshots every served engine: the single-network tenant
// (empty name) and every federation member. Snapshots are taken at call time
// — collectors run it on each scrape.
func (s *Server) statsByNetwork() []namedStats {
	var out []namedStats
	if s.def != nil {
		out = append(out, namedStats{name: s.def.name, st: s.def.engine.Stats()})
	}
	if s.fed != nil {
		for _, n := range s.fed.Stats().PerNetwork {
			out = append(out, namedStats{name: n.Network, st: n.Stats})
		}
	}
	return out
}

// registerCollectors exposes the engine, cache and federation counter
// surfaces as scrape-time collector families: sampled from Stats() at render,
// never double-counted into live instruments.
func (s *Server) registerCollectors() {
	reg := s.obsv.Registry()

	engineCounter := func(name, help string, v func(engine.Stats) float64) {
		reg.CollectFunc(name, help, "counter", []string{"network"}, func() []obs.Sample {
			return s.engineSamples(v)
		})
	}
	engineGauge := func(name, help string, v func(engine.Stats) float64) {
		reg.CollectFunc(name, help, "gauge", []string{"network"}, func() []obs.Sample {
			return s.engineSamples(v)
		})
	}

	engineCounter("tc_engine_queries_total",
		"Engine Query calls (including those issued by batch and top-k).",
		func(st engine.Stats) float64 { return float64(st.Queries) })
	engineCounter("tc_engine_batches_total",
		"Engine QueryBatch calls.",
		func(st engine.Stats) float64 { return float64(st.Batches) })
	engineCounter("tc_engine_topk_queries_total",
		"Engine top-k query calls.",
		func(st engine.Stats) float64 { return float64(st.TopKQueries) })
	engineCounter("tc_engine_explains_total",
		"Engine Explain calls.",
		func(st engine.Stats) float64 { return float64(st.Explains) })
	engineCounter("tc_engine_deltas_applied_total",
		"Applied network deltas (incremental index maintenance).",
		func(st engine.Stats) float64 { return float64(st.DeltasApplied) })
	engineCounter("tc_engine_shard_loads_total",
		"Completed lazy shard loads from disk.",
		func(st engine.Stats) float64 { return float64(st.LazyLoads) })
	engineCounter("tc_engine_shard_evictions_total",
		"Budget-driven shard evictions.",
		func(st engine.Stats) float64 { return float64(st.ShardEvictions) })
	engineCounter("tc_engine_shards_skipped_total",
		"Shard tasks answered from the alpha* bound without traversal.",
		func(st engine.Stats) float64 { return float64(st.ShardsSkipped) })
	engineCounter("tc_engine_shards_prefetched_total",
		"Shard loads performed by the background prefetcher.",
		func(st engine.Stats) float64 { return float64(st.ShardsPrefetched) })
	engineCounter("tc_engine_streams_total",
		"Pull-based streams opened (StreamQuery and StreamTopK).",
		func(st engine.Stats) float64 { return float64(st.Streams) })
	engineCounter("tc_engine_shards_short_circuited_total",
		"Scheduled shards top-k early termination never opened.",
		func(st engine.Stats) float64 { return float64(st.ShardsShortCircuited) })
	engineGauge("tc_engine_index_epoch",
		"Index epoch: swaps installed by shard reloads and applied deltas.",
		func(st engine.Stats) float64 { return float64(st.IndexEpoch) })
	engineGauge("tc_engine_shards",
		"TC-Tree partitions in the network's index.",
		func(st engine.Stats) float64 { return float64(st.Shards) })
	engineGauge("tc_engine_resident_shards",
		"Shards currently resident in memory.",
		func(st engine.Stats) float64 { return float64(st.ResidentShards) })
	engineGauge("tc_engine_resident_bytes",
		"Summed memory charge of resident shards (mapped bytes for TCBIN, payload bytes for gob).",
		func(st engine.Stats) float64 { return float64(st.ResidentBytes) })
	engineCounter("tc_engine_shards_skipped_catalogue_total",
		"Containment shard tasks pruned by the per-shard catalogue (bloom filter or alpha histogram).",
		func(st engine.Stats) float64 { return float64(st.ShardsSkippedCatalogue) })

	cacheCounter := func(name, help string, v func(engine.CacheStats) float64) {
		reg.CollectFunc(name, help, "counter", []string{"cache"}, func() []obs.Sample {
			return s.cacheSamples(v)
		})
	}
	cacheGauge := func(name, help string, v func(engine.CacheStats) float64) {
		reg.CollectFunc(name, help, "gauge", []string{"cache"}, func() []obs.Sample {
			return s.cacheSamples(v)
		})
	}
	cacheCounter("tc_cache_hits_total",
		"Result-cache lookups served from the cache.",
		func(c engine.CacheStats) float64 { return float64(c.Hits) })
	cacheCounter("tc_cache_misses_total",
		"Result-cache lookups that fell through to execution.",
		func(c engine.CacheStats) float64 { return float64(c.Misses) })
	cacheCounter("tc_cache_evictions_total",
		"Result-cache entries displaced by the LRU policy.",
		func(c engine.CacheStats) float64 { return float64(c.Evictions) })
	cacheGauge("tc_cache_entries",
		"Result-cache entries resident right now.",
		func(c engine.CacheStats) float64 { return float64(c.Length) })
	cacheGauge("tc_cache_capacity",
		"Result-cache capacity bound.",
		func(c engine.CacheStats) float64 { return float64(c.Capacity) })

	if s.fed == nil {
		return
	}
	fedCollect := func(name, help, typ string, v func(fs federation.Stats) float64) {
		reg.CollectFunc(name, help, typ, nil, func() []obs.Sample {
			return []obs.Sample{{Value: v(s.fed.Stats())}}
		})
	}
	fedCollect("tc_federation_networks",
		"Networks attached to the federation.", "gauge",
		func(fs federation.Stats) float64 { return float64(fs.Networks) })
	fedCollect("tc_federation_queryalls_total",
		"Cross-network query-all calls.", "counter",
		func(fs federation.Stats) float64 { return float64(fs.QueryAlls) })
	fedCollect("tc_federation_topkalls_total",
		"Cross-network top-k calls.", "counter",
		func(fs federation.Stats) float64 { return float64(fs.TopKAlls) })
	fedCollect("tc_federation_streamalls_total",
		"Cross-network streaming calls (StreamQueryAll, StreamTopKAll).", "counter",
		func(fs federation.Stats) float64 { return float64(fs.StreamAlls) })
	fedCollect("tc_federation_resident_shards",
		"Lazily loaded shards resident across every network.", "gauge",
		func(fs federation.Stats) float64 { return float64(fs.ResidentShards) })
	fedCollect("tc_federation_max_resident_shards",
		"Shared residency budget (0 = unlimited).", "gauge",
		func(fs federation.Stats) float64 { return float64(fs.MaxResidentShards) })
	fedCollect("tc_federation_resident_bytes",
		"Summed memory charge of resident shards across every network.", "gauge",
		func(fs federation.Stats) float64 { return float64(fs.ResidentBytes) })
}

// engineSamples renders one per-network sample per served engine.
func (s *Server) engineSamples(v func(engine.Stats) float64) []obs.Sample {
	stats := s.statsByNetwork()
	out := make([]obs.Sample, 0, len(stats))
	for _, ns := range stats {
		out = append(out, obs.Sample{Labels: []string{ns.name}, Value: v(ns.st)})
	}
	return out
}

// cacheSamples renders one sample per result cache. A federation's shared
// cache is global — every member reports the same counters — so it is emitted
// exactly once under cache="shared" instead of once per network, which would
// multiply every hit by the tenant count. Private caches are labeled by their
// network (empty = the single-network tenant).
func (s *Server) cacheSamples(v func(engine.CacheStats) float64) []obs.Sample {
	var out []obs.Sample
	sharedSeen := false
	for _, ns := range s.statsByNetwork() {
		c := ns.st.Cache
		if !c.Enabled {
			continue
		}
		if c.Shared {
			if sharedSeen {
				continue
			}
			sharedSeen = true
			out = append(out, obs.Sample{Labels: []string{"shared"}, Value: v(c)})
			continue
		}
		out = append(out, obs.Sample{Labels: []string{ns.name}, Value: v(c)})
	}
	return out
}
