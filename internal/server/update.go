package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"themecomm/internal/delta"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// This file implements incremental index maintenance over HTTP:
//
//	POST /api/v1/update             apply a network delta to the default network
//	POST /api/v1/{network}/update   apply a network delta to one tenant
//
// The request body is a JSON delta; the affected shards are rebuilt and
// swapped in place while queries keep flowing (see engine.ApplyDelta), and
// only the updated network's cache namespace is purged. Updating requires the
// server to hold the tenant's database network (tcserver -net, or a sibling
// <name>.dbnet in the federation's networks directory); without it the route
// answers 409.

// UpdateTransaction is one transaction of an update request. Items are names
// resolved through the network's dictionary (unknown names are interned, so
// updates may introduce new items) or numeric identifiers.
type UpdateTransaction struct {
	Vertex int      `json:"vertex"`
	Items  []string `json:"items"`
}

// UpdateRequest is the payload of POST /api/v1/update: a network delta.
// Edges are [u, v] vertex pairs. Changes apply in declaration order:
// vertices are added first, then transactions removed, then vertices
// tombstoned, then edges removed, then edges added, then transactions
// appended — so one request can tombstone a vertex and repopulate it.
type UpdateRequest struct {
	AddVertices int `json:"addVertices,omitempty"`
	// RemoveVertices tombstones vertices: incident edges are dropped and the
	// vertex database emptied, but the id stays valid (ids are positional and
	// never renumber).
	RemoveVertices     []int               `json:"removeVertices,omitempty"`
	AddEdges           [][2]int            `json:"addEdges,omitempty"`
	RemoveEdges        [][2]int            `json:"removeEdges,omitempty"`
	AddTransactions    []UpdateTransaction `json:"addTransactions,omitempty"`
	RemoveTransactions []UpdateTransaction `json:"removeTransactions,omitempty"`
}

// UpdateResponse reports an applied delta: which top-level items were
// affected, what happened to their shards, and the index epoch the update
// installed.
type UpdateResponse struct {
	// Network is the updated network; empty on the single-network route.
	Network string `json:"network,omitempty"`
	// AffectedItems lists the top-level items whose shards were rebuilt,
	// rendered through the dictionary.
	AffectedItems []string `json:"affectedItems"`
	// ReplacedShards, AddedShards and RemovedShards count the shard swaps
	// the delta caused; shards outside the affected set were untouched.
	ReplacedShards int `json:"replacedShards"`
	AddedShards    int `json:"addedShards"`
	RemovedShards  int `json:"removedShards"`
	// IndexEpoch is the engine's index epoch after the swap.
	IndexEpoch uint64 `json:"indexEpoch"`
	// JournalSeq is the journal sequence number durably assigned to the
	// delta; only set on a replication primary, whose updates are journaled
	// and checkpointed in the background instead of staged synchronously.
	JournalSeq uint64 `json:"journalSeq,omitempty"`
	// UpdateMicros is the wall time of the whole update.
	UpdateMicros int64 `json:"updateMicros"`
	// Warning is set when the index swap succeeded but a follow-up step
	// (the network-file write-back) failed. The delta IS applied — clients
	// must not retry it — but the operator should look at the persistence
	// problem before restarting the server.
	Warning string `json:"warning,omitempty"`
}

// parseUpdate converts the JSON request into a delta, resolving item names
// through the tenant's dictionary.
func (t *tenant) parseUpdate(req *UpdateRequest) (*delta.Delta, error) {
	d := &delta.Delta{AddVertices: req.AddVertices}
	if d.AddVertices < 0 {
		return nil, fmt.Errorf("negative addVertices %d", d.AddVertices)
	}
	parseEdge := func(e [2]int, what string) (graph.Edge, error) {
		if e[0] == e[1] {
			return graph.Edge{}, fmt.Errorf("%s edge (%d,%d) is a self-loop", what, e[0], e[1])
		}
		if e[0] < 0 || e[1] < 0 || e[0] > math.MaxInt32 || e[1] > math.MaxInt32 {
			return graph.Edge{}, fmt.Errorf("%s edge (%d,%d) has an endpoint outside [0, %d]", what, e[0], e[1], math.MaxInt32)
		}
		return graph.EdgeOf(graph.VertexID(e[0]), graph.VertexID(e[1])), nil
	}
	for _, e := range req.AddEdges {
		edge, err := parseEdge(e, "added")
		if err != nil {
			return nil, err
		}
		d.AddEdges = append(d.AddEdges, edge)
	}
	for _, e := range req.RemoveEdges {
		edge, err := parseEdge(e, "removed")
		if err != nil {
			return nil, err
		}
		d.RemoveEdges = append(d.RemoveEdges, edge)
	}
	for i, v := range req.RemoveVertices {
		if v < 0 || v > math.MaxInt32 {
			return nil, fmt.Errorf("removed vertex %d: %d outside [0, %d]", i, v, math.MaxInt32)
		}
		d.RemoveVertices = append(d.RemoveVertices, graph.VertexID(v))
	}
	// Structural checks first; the emptiness check counts the raw request
	// so that item names are only resolved — and new names only interned
	// into the dictionary — once the request is known to be well-formed.
	checkTxs := func(txs []UpdateTransaction, what string) error {
		for i, tx := range txs {
			if tx.Vertex < 0 || tx.Vertex > math.MaxInt32 {
				return fmt.Errorf("%s %d: vertex %d outside [0, %d]", what, i, tx.Vertex, math.MaxInt32)
			}
			if len(tx.Items) == 0 {
				return fmt.Errorf("%s %d: empty item list", what, i)
			}
		}
		return nil
	}
	if err := checkTxs(req.AddTransactions, "transaction"); err != nil {
		return nil, err
	}
	if err := checkTxs(req.RemoveTransactions, "removed transaction"); err != nil {
		return nil, err
	}
	if d.AddVertices == 0 && len(d.RemoveVertices) == 0 && len(d.AddEdges) == 0 &&
		len(d.RemoveEdges) == 0 && len(req.AddTransactions) == 0 && len(req.RemoveTransactions) == 0 {
		return nil, fmt.Errorf("empty delta: nothing to apply")
	}
	resolveTxs := func(txs []UpdateTransaction, what string) ([]delta.VertexTransaction, error) {
		out := make([]delta.VertexTransaction, 0, len(txs))
		for i, tx := range txs {
			items := make([]itemset.Item, 0, len(tx.Items))
			for _, field := range tx.Items {
				it, err := delta.ResolveItem(field, t.dict)
				if err != nil {
					return nil, fmt.Errorf("%s %d: %w", what, i, err)
				}
				items = append(items, it)
			}
			out = append(out, delta.VertexTransaction{
				Vertex: graph.VertexID(tx.Vertex),
				Tx:     itemset.New(items...),
			})
		}
		return out, nil
	}
	var err error
	if d.AddTransactions, err = resolveTxs(req.AddTransactions, "transaction"); err != nil {
		return nil, err
	}
	if d.RemoveTransactions, err = resolveTxs(req.RemoveTransactions, "removed transaction"); err != nil {
		return nil, err
	}
	if len(d.AddTransactions) == 0 {
		d.AddTransactions = nil
	}
	if len(d.RemoveTransactions) == 0 {
		d.RemoveTransactions = nil
	}
	return d, nil
}

func (s *Server) serveUpdate(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.readOnly {
		// Replica mode: this server replays the primary's journal and must
		// not accept writes of its own. The Location header names where the
		// same request would succeed.
		if s.primaryURL != "" {
			w.Header().Set("Location", s.primaryURL+r.URL.Path)
		}
		writeError(w, r, http.StatusForbidden, "this server is a read-only replica; send updates to the primary")
		return
	}
	if t.update == nil {
		writeError(w, r, http.StatusConflict,
			"updates are disabled: the server does not hold this network's database network (start tcserver with -net, or put a sibling <name>.dbnet next to the index)")
		return
	}
	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid update request: %v", err))
		return
	}
	d, err := t.parseUpdate(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	res, seq, err := t.update(d)
	if err != nil && res == nil {
		// Nothing was applied. Validation happens inside the tenant's
		// update lock (validating here would race a concurrent update
		// mutating the network); the sentinel distinguishes a malformed
		// delta from a server failure.
		if errors.Is(err, delta.ErrInvalid) {
			writeError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	resp := UpdateResponse{
		Network:       t.name,
		AffectedItems: t.itemNames(res.Affected),
		IndexEpoch:    res.Epoch,
		JournalSeq:    seq,
		UpdateMicros:  res.Duration.Microseconds(),
	}
	if res.Report != nil {
		resp.ReplacedShards = len(res.Report.Replaced)
		resp.AddedShards = len(res.Report.Added)
		resp.RemovedShards = len(res.Report.Removed)
	}
	if err != nil {
		// The index swap succeeded but a follow-up step failed (network
		// write-back). A 5xx would invite clients to retry a delta that IS
		// applied — report success with a warning instead.
		resp.Warning = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}
