package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"themecomm/internal/federation"
)

// TestInvalidParameterCombinations: the typed request layer rejects every
// unsupported parameter and combination with a 400 — the same wording on
// every route — instead of handlers silently ignoring what they do not
// implement.
func TestInvalidParameterCombinations(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []struct {
		name string
		url  string
		want int
	}{
		// Invalid single parameters, shared by every route.
		{"negative alpha", "/api/v1/query?alpha=-1", http.StatusBadRequest},
		{"alpha NaN", "/api/v1/query?alpha=NaN", http.StatusBadRequest},
		{"alpha Inf", "/api/v1/query?alpha=%2BInf", http.StatusBadRequest},
		{"k zero", "/api/v1/query?k=0", http.StatusBadRequest},
		{"k text", "/api/v1/query?k=x", http.StatusBadRequest},
		{"contains text", "/api/v1/query?contains=x", http.StatusBadRequest},
		{"stream text", "/api/v1/query?stream=yes", http.StatusBadRequest},
		{"limit zero", "/api/v1/query?limit=0", http.StatusBadRequest},
		{"limit text", "/api/v1/query?limit=x", http.StatusBadRequest},

		// Combinations the query route rejects.
		{"contains with k", "/api/v1/query?contains=true&k=3", http.StatusBadRequest},
		{"contains with stream", "/api/v1/query?contains=true&stream=1", http.StatusBadRequest},
		{"contains with limit", "/api/v1/query?contains=true&limit=2", http.StatusBadRequest},
		{"contains with cursor", "/api/v1/query?contains=true&cursor=abc", http.StatusBadRequest},

		// Parameters outside a route's capability set.
		{"explain k", "/api/v1/explain?alpha=0&k=3", http.StatusBadRequest},
		{"explain stream", "/api/v1/explain?alpha=0&stream=1", http.StatusBadRequest},
		{"explain limit", "/api/v1/explain?alpha=0&limit=2", http.StatusBadRequest},
		{"explain cursor", "/api/v1/explain?alpha=0&cursor=abc", http.StatusBadRequest},
		{"queryall contains", "/api/v1/queryall?alpha=0&contains=true", http.StatusNotFound},
		{"vertex k", "/api/v1/vertex?id=0&k=3", http.StatusBadRequest},
		{"vertex stream", "/api/v1/vertex?id=0&stream=1", http.StatusBadRequest},

		// Valid boundary combinations stay accepted.
		{"contains alone", "/api/v1/query?contains=true&alpha=0", http.StatusOK},
		{"stream false with contains", "/api/v1/query?contains=true&stream=0", http.StatusOK},
		{"explain contains", "/api/v1/explain?contains=true&alpha=0", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := get(t, s, tc.url)
			if rec.Code != tc.want {
				t.Fatalf("%s: status %d, want %d (body %s)", tc.url, rec.Code, tc.want, rec.Body.String())
			}
		})
	}
}

// TestQueryAllParameterCombinations runs the capability checks that need a
// federation behind /api/v1/queryall.
func TestQueryAllParameterCombinations(t *testing.T) {
	s, _, _ := newFederatedServer(t, federation.Options{CacheSize: 16})
	cases := []struct {
		url  string
		want int
	}{
		{"/api/v1/queryall?alpha=0&contains=true", http.StatusBadRequest},
		{"/api/v1/queryall?alpha=0&cursor=abc", http.StatusBadRequest},
		{"/api/v1/queryall?alpha=0&stream=yes", http.StatusBadRequest},
		{"/api/v1/queryall?alpha=0&k=0", http.StatusBadRequest},
		{"/api/v1/queryall?alpha=0", http.StatusOK},
		{"/api/v1/queryall?alpha=0&k=3&stream=1&limit=2", http.StatusOK},
	}
	for _, tc := range cases {
		rec := get(t, s, tc.url)
		if rec.Code != tc.want {
			t.Fatalf("%s: status %d, want %d (body %s)", tc.url, rec.Code, tc.want, rec.Body.String())
		}
	}
}

// TestErrorEnvelope: every error answer carries the JSON envelope — error,
// status echoed in the body, and the request ID when the observability layer
// runs. The route list sweeps one failure per handler family.
func TestErrorEnvelope(t *testing.T) {
	s, _ := newObservedServer(t)
	urls := []string{
		"/no/such/route",
		"/api/v1/query?alpha=-1",
		"/api/v1/query?cursor=%21%21",
		"/api/v1/explain?k=1",
		"/api/v1/patterns?length=0",
		"/api/v1/vertex?id=-1",
		"/api/v1/queryall",             // no federation
		"/api/v1/networks",             // no federation
		"/api/v1/federationstats",      // no federation
		"/api/v1/journal",              // not a primary
		"/api/v1/nosuch/query?alpha=0", // unknown network
		"/api/v1/batch",                // POST-only route hit with GET
	}
	for _, url := range urls {
		rec := get(t, s, url)
		if rec.Code < 400 {
			t.Fatalf("%s: status %d, want an error", url, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s: Content-Type %q, want application/json", url, ct)
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("%s: error body is not the JSON envelope: %v (body %s)", url, err, rec.Body.String())
		}
		if e.Error == "" {
			t.Fatalf("%s: envelope has no error message: %s", url, rec.Body.String())
		}
		if e.Status != rec.Code {
			t.Fatalf("%s: envelope status %d != HTTP status %d", url, e.Status, rec.Code)
		}
		if e.RequestID == "" {
			t.Fatalf("%s: envelope has no requestId despite observability being enabled: %s", url, rec.Body.String())
		}
	}

	// Method errors also carry the envelope (POST-only route hit with GET).
	rec := post(t, s, "/api/v1/query?alpha=0", "")
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Status != http.StatusMethodNotAllowed {
		t.Fatalf("method error envelope: %v (body %s)", err, rec.Body.String())
	}

	// Without an observer the envelope simply omits the request ID.
	plain, _ := newTestServer(t)
	rec = get(t, plain, "/api/v1/query?alpha=-1")
	e = errorResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("plain envelope: %v", err)
	}
	if e.RequestID != "" {
		t.Fatalf("plain server minted a requestId: %s", rec.Body.String())
	}
	if e.Status != http.StatusBadRequest {
		t.Fatalf("plain envelope status = %d", e.Status)
	}
}
