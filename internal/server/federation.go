package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"themecomm/internal/federation"
	"themecomm/internal/itemset"
	"themecomm/internal/replication"
)

// This file holds the multi-network routes a federated server adds alongside
// the single-network API:
//
//	GET /api/v1/networks                     list attached networks
//	GET /api/v1/federationstats              shared-resource + aggregate counters
//	GET /api/v1/queryall                     one query against every network
//	GET /api/v1/{network}/query | explain | enginestats | stats | patterns | vertex
//	POST /api/v1/{network}/batch
//
// The {network} routes reuse the single-network handlers verbatim on the
// resolved tenant, so a per-network answer is identical to what a standalone
// server over the same index would return. On a server without a federation
// every route here answers 404.

// registerFederationRoutes wires the multi-network routes. They are always
// registered — route resolution reports the missing federation — so the API
// surface (and its 404s) is uniform across deployments.
func (s *Server) registerFederationRoutes() {
	s.handle("/api/v1/networks", s.handleNetworks)
	s.handle("/api/v1/federationstats", s.handleFederationStats)
	s.handle("/api/v1/queryall", s.handleQueryAll)
	s.handle("/api/v1/{network}/query", s.forNetwork(s.serveQuery))
	s.handle("/api/v1/{network}/explain", s.forNetwork(s.serveExplain))
	s.handle("/api/v1/{network}/batch", s.forNetwork(s.serveBatch))
	s.handle("/api/v1/{network}/enginestats", s.forNetwork(s.serveEngineStats))
	s.handle("/api/v1/{network}/stats", s.forNetwork(s.serveStats))
	s.handle("/api/v1/{network}/patterns", s.forNetwork(s.servePatterns))
	s.handle("/api/v1/{network}/vertex", s.forNetwork(s.serveVertex))
	s.handle("/api/v1/{network}/update", s.forNetwork(s.serveUpdate))
}

// forNetwork adapts a tenant-scoped handler to the /api/v1/{network}/...
// routes: the path segment resolves the tenant, and an unknown network (or a
// server without a federation) answers 404.
func (s *Server) forNetwork(h func(*tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.fed == nil {
			writeError(w, r, http.StatusNotFound, "this server does not serve a federation of networks")
			return
		}
		name := r.PathValue("network")
		n, ok := s.fed.Network(name)
		if !ok {
			writeError(w, r, http.StatusNotFound, fmt.Sprintf("unknown network %q", name))
			return
		}
		h(s.tenantOf(n), w, r)
	}
}

// NetworkSummary is one network of a GET /api/v1/networks listing.
type NetworkSummary struct {
	Name string `json:"name"`
	// Nodes, Shards, Depth and MaxAlpha are the network's index statistics.
	Nodes    int     `json:"nodes"`
	Shards   int     `json:"shards"`
	Depth    int     `json:"depth"`
	MaxAlpha float64 `json:"maxAlpha"`
	// Lazy reports whether the network loads shards on demand;
	// ResidentShards is how many of its shards are in memory right now.
	Lazy           bool `json:"lazy"`
	ResidentShards int  `json:"residentShards"`
}

// NetworksResponse is the payload of GET /api/v1/networks.
type NetworksResponse struct {
	// Default is the network behind the single-network routes.
	Default  string           `json:"default,omitempty"`
	Networks []NetworkSummary `json:"networks"`
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.fed == nil {
		writeError(w, r, http.StatusNotFound, "this server does not serve a federation of networks")
		return
	}
	resp := NetworksResponse{Networks: []NetworkSummary{}}
	if t, _ := s.defaultTenant(); t != nil {
		resp.Default = t.name
	}
	for _, name := range s.fed.Names() {
		n, ok := s.fed.Network(name)
		if !ok {
			continue
		}
		eng := n.Engine()
		resp.Networks = append(resp.Networks, NetworkSummary{
			Name:           name,
			Nodes:          eng.NumNodes(),
			Shards:         eng.NumShards(),
			Depth:          eng.Depth(),
			MaxAlpha:       eng.MaxAlpha(),
			Lazy:           eng.Lazy(),
			ResidentShards: eng.Stats().ResidentShards,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// FederationStatsResponse is the payload of GET /api/v1/federationstats: the
// federation's shared-resource counters, plus the replication role state when
// the server is a primary or replica.
type FederationStatsResponse struct {
	federation.Stats
	Replication *replication.Status `json:"replication,omitempty"`
}

func (s *Server) handleFederationStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.fed == nil {
		writeError(w, r, http.StatusNotFound, "this server does not serve a federation of networks")
		return
	}
	resp := FederationStatsResponse{Stats: s.fed.Stats()}
	if s.replStatus != nil {
		st := s.replStatus()
		resp.Replication = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// NetworkQueryResponse is one network's answer within GET /api/v1/queryall.
type NetworkQueryResponse struct {
	Network string `json:"network"`
	QueryResponse
}

// NetworkCommunityResponse is one community of a merged cross-network top-k
// answer.
type NetworkCommunityResponse struct {
	Network string `json:"network"`
	CommunityResponse
}

// QueryAllResponse is the payload of GET /api/v1/queryall: per-network
// answers, or — when k is given — the cross-network top-k merge ordered by
// cohesion, then size, with the network name as final tiebreak.
type QueryAllResponse struct {
	Alpha   float64  `json:"alpha"`
	Pattern []string `json:"pattern,omitempty"`
	TopK    int      `json:"topK,omitempty"`
	// Results holds the per-network answers (k absent).
	Results []NetworkQueryResponse `json:"results,omitempty"`
	// Communities holds the merged cross-network top-k (k given).
	Communities []NetworkCommunityResponse `json:"communities,omitempty"`
}

// resolverFor builds the per-network pattern resolver of a cross-network
// query: each field is either a numeric item identifier (taken as-is) or an
// item name resolved through the network's own dictionary. Names a network
// does not know are dropped for that network — a query pattern is the set of
// allowed items, and an item the network has never seen allows nothing
// extra — and a network resolving no field at all answers nothing (the empty
// non-nil pattern), rather than everything.
func resolverFor(fields []string) federation.PatternResolver {
	return func(n *federation.Network) itemset.Itemset {
		if len(fields) == 0 {
			return nil // every item: the query-by-alpha workload
		}
		items := itemset.Itemset{}
		for _, field := range fields {
			if id, err := strconv.Atoi(field); err == nil {
				items = items.Add(itemset.Item(id))
				continue
			}
			if dict := n.Dictionary(); dict != nil {
				if id, ok := dict.Lookup(field); ok {
					items = items.Add(id)
				}
			}
		}
		return items
	}
}

// patternFields splits the raw pattern parameter into trimmed non-empty
// fields.
func patternFields(raw string) []string {
	var fields []string
	for _, field := range strings.Split(raw, ",") {
		if field = strings.TrimSpace(field); field != "" {
			fields = append(fields, field)
		}
	}
	return fields
}

func (s *Server) handleQueryAll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.fed == nil {
		writeError(w, r, http.StatusNotFound, "this server does not serve a federation of networks")
		return
	}
	// Cursors never apply to queryall — members move epochs independently,
	// so no single epoch could validate a resume; the request layer rejects
	// them even without stream=1 rather than silently ignoring the parameter.
	req, rerr := parseQueryRequest(nil, r, capTopK|capStream)
	if rerr != nil {
		rerr.write(w, r)
		return
	}
	alpha, k, fields := req.Alpha, req.K, req.Fields
	resolve := resolverFor(fields)
	if req.Stream {
		s.serveQueryAllStream(w, r, resolve, fields, alpha, k, req.Limit)
		return
	}
	resp := QueryAllResponse{Alpha: alpha, Pattern: fields, TopK: k}

	// One tenant per network, not per community: the merge below may carry
	// hundreds of communities from a handful of networks.
	tenants := make(map[string]*tenant)
	tenantFor := func(name string) *tenant {
		if t, ok := tenants[name]; ok {
			return t
		}
		n, ok := s.fed.Network(name)
		if !ok {
			return nil // detached mid-flight; its communities are gone anyway
		}
		t := s.tenantOf(n)
		tenants[name] = t
		return t
	}

	if k > 0 {
		merged, err := s.fed.TopKAllFuncContext(r.Context(), resolve, alpha, k)
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, err.Error())
			return
		}
		for _, rc := range merged {
			t := tenantFor(rc.Network)
			if t == nil {
				continue
			}
			resp.Communities = append(resp.Communities, NetworkCommunityResponse{
				Network:           rc.Network,
				CommunityResponse: t.rankedResponse(rc.RankedCommunity),
			})
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	results, err := s.fed.QueryAllFuncContext(r.Context(), resolve, alpha)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	for _, nr := range results {
		t := tenantFor(nr.Network)
		if t == nil {
			continue
		}
		var patternNames []string
		if nr.Pattern != nil {
			patternNames = t.itemNames(nr.Pattern)
		}
		resp.Results = append(resp.Results, NetworkQueryResponse{
			Network:       nr.Network,
			QueryResponse: t.queryResponse(nr.Pattern, patternNames, alpha, nr.Result),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
