package server

import (
	"testing"
)

// FuzzCursorDecode throws arbitrary strings at the pagination-cursor decoder:
// malformed, truncated, oversized or type-confused tokens must error — never
// panic — and any token the decoder accepts must round-trip through
// encodeCursor to an identical cursor.
func FuzzCursorDecode(f *testing.F) {
	// A well-formed cursor, and mutations a hostile or stale client could send.
	valid := encodeCursor(cursor{V: cursorVersion, Network: "bk", Pattern: "1,2", Alpha: 0.25, K: 5, Epoch: 3, Pos: 7})
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	f.Add("")
	f.Add("not base64!!")
	f.Add("aGVsbG8") // base64 of non-JSON
	f.Add(encodeCursor(cursor{V: 99, Epoch: 1}))
	f.Add(encodeCursor(cursor{V: cursorVersion, Pos: -1}))
	f.Add(encodeCursor(cursor{V: cursorVersion, K: -3}))
	f.Add(encodeCursor(cursor{V: cursorVersion, Alpha: -0.5}))
	// Epoch-skewed: decodes fine; the handler rejects it with 410 later.
	f.Add(encodeCursor(cursor{V: cursorVersion, Epoch: 1 << 60, Pos: 1}))
	f.Add("eyJ2IjoxLCJwb3MiOjF9")   // raw JSON-ish base64
	f.Add(`{"v":1,"pos":1}`)        // unencoded JSON
	f.Add("AAAAAAAAAAAAAAAAAAAAAA") // binary noise

	f.Fuzz(func(t *testing.T, raw string) {
		c, err := decodeCursor(raw)
		if err != nil {
			return
		}
		// Accepted tokens must satisfy the invariants every handler relies on.
		if c.V != cursorVersion {
			t.Fatalf("accepted cursor with version %d", c.V)
		}
		if c.Pos < 0 || c.K < 0 || c.Alpha < 0 {
			t.Fatalf("accepted out-of-range cursor %+v", c)
		}
		// And round-trip: re-encoding the decoded cursor must decode back to
		// the same value (the token itself need not match — JSON field order
		// and unknown fields are not canonical).
		again, err := decodeCursor(encodeCursor(c))
		if err != nil {
			t.Fatalf("re-encoded cursor failed to decode: %v", err)
		}
		if again != c {
			t.Fatalf("round trip changed the cursor: %+v vs %+v", c, again)
		}
	})
}
