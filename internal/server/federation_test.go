package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"regexp"
	"strconv"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/engine"
	"themecomm/internal/federation"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// buildFedTree builds a small TC-Tree over a dense random database network.
func buildFedTree(t *testing.T, seed int64) *tctree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := dbnet.New(16)
	for i := 0; i < 40; i++ {
		a, b := graph.VertexID(rng.Intn(16)), graph.VertexID(rng.Intn(16))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < 16; v++ {
		for i := 0; i < 1+rng.Intn(4); i++ {
			tx := make([]itemset.Item, 1+rng.Intn(3))
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(5))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if tree.NumNodes() == 0 {
		t.Fatalf("seed %d built an empty tree", seed)
	}
	return tree
}

var fedSeeds = map[string]int64{"aminer": 7, "bk": 11, "gw": 13}

// newFederatedServer builds a three-network federated server (all lazy over
// sharded indexes) and returns it with the backing trees by name.
func newFederatedServer(t *testing.T, opts federation.Options) (*Server, *federation.Federation, map[string]*tctree.Tree) {
	t.Helper()
	fed := federation.New(opts)
	trees := make(map[string]*tctree.Tree, len(fedSeeds))
	for name, seed := range fedSeeds {
		tree := buildFedTree(t, seed)
		trees[name] = tree
		dir := t.TempDir()
		if _, err := tree.WriteSharded(dir); err != nil {
			t.Fatalf("WriteSharded: %v", err)
		}
		idx, err := tctree.OpenSharded(dir)
		if err != nil {
			t.Fatalf("OpenSharded: %v", err)
		}
		if err := fed.AttachIndex(name, idx, federation.NetworkOptions{}); err != nil {
			t.Fatalf("AttachIndex(%s): %v", name, err)
		}
	}
	s, err := New(nil, Options{Federation: fed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, fed, trees
}

// micros strips the run-to-run timing fields so otherwise identical answers
// compare byte-for-byte.
var micros = regexp.MustCompile(`"(queryMicros|micros)":\d+`)

func normalize(body string) string { return micros.ReplaceAllString(body, `"$1":0`) }

// TestUnknownNetworkRoutes checks the 404 surface: unknown networks, and
// every federation route on a federation-less server.
func TestUnknownNetworkRoutes(t *testing.T) {
	fs, _, _ := newFederatedServer(t, federation.Options{CacheSize: 16})
	for _, url := range []string{
		"/api/v1/nosuch/query?alpha=0",
		"/api/v1/nosuch/explain?alpha=0",
		"/api/v1/nosuch/enginestats",
		"/api/v1/nosuch/stats",
		"/api/v1/nosuch/patterns",
		"/api/v1/nosuch/vertex?id=0",
	} {
		if rec := get(t, fs, url); rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", url, rec.Code)
		}
	}
	if rec := post(t, fs, "/api/v1/nosuch/batch", `{"queries":[{"alpha":0}]}`); rec.Code != http.StatusNotFound {
		t.Fatalf("POST batch on unknown network = %d, want 404", rec.Code)
	}

	// A single-network server answers 404 on every federation route.
	single, _ := newTestServer(t)
	for _, url := range []string{
		"/api/v1/networks",
		"/api/v1/federationstats",
		"/api/v1/queryall?alpha=0",
		"/api/v1/bk/query?alpha=0",
	} {
		if rec := get(t, single, url); rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s on a single-network server = %d, want 404", url, rec.Code)
		}
	}
}

// TestNetworksListing checks GET /api/v1/networks: every attached network
// with its index statistics, plus the default-network marker.
func TestNetworksListing(t *testing.T) {
	fs, _, trees := newFederatedServer(t, federation.Options{CacheSize: 16})
	rec := get(t, fs, "/api/v1/networks")
	if rec.Code != http.StatusOK {
		t.Fatalf("networks status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp NetworksResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Default != "aminer" {
		t.Fatalf("default network = %q, want the lexically first (aminer)", resp.Default)
	}
	if len(resp.Networks) != 3 {
		t.Fatalf("listed %d networks, want 3", len(resp.Networks))
	}
	for i, n := range resp.Networks {
		if n.Nodes != trees[n.Name].NumNodes() || !n.Lazy {
			t.Fatalf("network %q summary %+v does not match its tree", n.Name, n)
		}
		if i > 0 && resp.Networks[i-1].Name >= n.Name {
			t.Fatalf("networks not sorted: %q before %q", resp.Networks[i-1].Name, n.Name)
		}
	}
}

// TestFederatedSingleNetworkParity is the acceptance parity check: the
// answers of /api/v1/query on a standalone server, /api/v1/query on a
// federated server (default network) and /api/v1/{network}/query are
// byte-identical modulo the timing fields, for queries by alpha, by pattern
// and top-k — and likewise for explain and enginestats structure.
func TestFederatedSingleNetworkParity(t *testing.T) {
	fs, _, trees := newFederatedServer(t, federation.Options{CacheSize: 16})
	// The standalone server serves the default network's tree through its
	// own lazy engine over an identical sharded copy.
	name := "aminer"
	dir := t.TempDir()
	if _, err := trees[name].WriteSharded(dir); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	eng, err := engine.NewLazy(idx, engine.Options{CacheSize: 16})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	standalone, err := New(nil, Options{Engine: eng})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	item := trees[name].Root().Children[0].Item
	urls := []string{
		"/api/v1/query?alpha=0",
		"/api/v1/query?alpha=0.2",
		"/api/v1/query?alpha=0.2&k=5",
		"/api/v1/query?pattern=" + strconv.Itoa(int(item)) + "&alpha=0",
	}
	for _, url := range urls {
		want := get(t, standalone, url)
		if want.Code != http.StatusOK {
			t.Fatalf("standalone GET %s = %d: %s", url, want.Code, want.Body.String())
		}
		viaDefault := get(t, fs, url)
		if viaDefault.Code != http.StatusOK {
			t.Fatalf("federated GET %s = %d: %s", url, viaDefault.Code, viaDefault.Body.String())
		}
		if normalize(viaDefault.Body.String()) != normalize(want.Body.String()) {
			t.Fatalf("default-network answer differs from standalone for %s:\n%s\nvs\n%s",
				url, viaDefault.Body.String(), want.Body.String())
		}
		viaNetwork := get(t, fs, "/api/v1/"+name+url[len("/api/v1"):])
		if normalize(viaNetwork.Body.String()) != normalize(want.Body.String()) {
			t.Fatalf("per-network answer differs from standalone for %s:\n%s\nvs\n%s",
				url, viaNetwork.Body.String(), want.Body.String())
		}
	}

	// Explain parity: identical plans (decisions, schedule, counters) modulo
	// the timing and the network label.
	var fedExplain, aloneExplain ExplainResponse
	if err := json.Unmarshal(get(t, fs, "/api/v1/"+name+"/explain?alpha=0.1").Body.Bytes(), &fedExplain); err != nil {
		t.Fatalf("decode federated explain: %v", err)
	}
	if err := json.Unmarshal(get(t, standalone, "/api/v1/explain?alpha=0.1").Body.Bytes(), &aloneExplain); err != nil {
		t.Fatalf("decode standalone explain: %v", err)
	}
	if fedExplain.Network != name || aloneExplain.Network != "" {
		t.Fatalf("explain network labels = %q / %q", fedExplain.Network, aloneExplain.Network)
	}
	if fedExplain.Shards != aloneExplain.Shards ||
		fedExplain.SkippedAlpha != aloneExplain.SkippedAlpha ||
		fedExplain.SkippedAbsent != aloneExplain.SkippedAbsent ||
		fedExplain.TotalCost != aloneExplain.TotalCost ||
		fedExplain.RetrievedNodes != aloneExplain.RetrievedNodes ||
		fedExplain.VisitedNodes != aloneExplain.VisitedNodes {
		t.Fatalf("explain plans differ:\nfederated %+v\nstandalone %+v", fedExplain.ExplainReport, aloneExplain.ExplainReport)
	}
	if len(fedExplain.Tasks) != len(aloneExplain.Tasks) {
		t.Fatalf("explain task counts differ")
	}
	for i := range fedExplain.Tasks {
		if fedExplain.Tasks[i].Item != aloneExplain.Tasks[i].Item ||
			fedExplain.Tasks[i].Decision != aloneExplain.Tasks[i].Decision {
			t.Fatalf("explain task %d differs: %+v vs %+v", i, fedExplain.Tasks[i], aloneExplain.Tasks[i])
		}
	}

	// Enginestats parity: same index shape and planner configuration; the
	// cache is marked shared on the federated engine.
	var fedStats, aloneStats engine.Stats
	if err := json.Unmarshal(get(t, fs, "/api/v1/"+name+"/enginestats").Body.Bytes(), &fedStats); err != nil {
		t.Fatalf("decode federated enginestats: %v", err)
	}
	if err := json.Unmarshal(get(t, standalone, "/api/v1/enginestats").Body.Bytes(), &aloneStats); err != nil {
		t.Fatalf("decode standalone enginestats: %v", err)
	}
	if fedStats.Shards != aloneStats.Shards || fedStats.Lazy != aloneStats.Lazy ||
		fedStats.Planner != aloneStats.Planner || fedStats.Workers != aloneStats.Workers {
		t.Fatalf("enginestats differ:\nfederated %+v\nstandalone %+v", fedStats, aloneStats)
	}
	if !fedStats.Cache.Shared || aloneStats.Cache.Shared {
		t.Fatalf("cache shared flags = %v / %v, want true / false", fedStats.Cache.Shared, aloneStats.Cache.Shared)
	}
	if !fedStats.SharedResidency || aloneStats.SharedResidency {
		t.Fatalf("residency shared flags = %v / %v, want true / false", fedStats.SharedResidency, aloneStats.SharedResidency)
	}
	// Per-network stats route matches the single-network stats shape.
	var fedIdx, aloneIdx StatsResponse
	if err := json.Unmarshal(get(t, fs, "/api/v1/"+name+"/stats").Body.Bytes(), &fedIdx); err != nil {
		t.Fatalf("decode per-network stats: %v", err)
	}
	if err := json.Unmarshal(get(t, standalone, "/api/v1/stats").Body.Bytes(), &aloneIdx); err != nil {
		t.Fatalf("decode standalone stats: %v", err)
	}
	if fedIdx != aloneIdx {
		t.Fatalf("index stats differ: %+v vs %+v", fedIdx, aloneIdx)
	}
}

// TestQueryAllEndpoint checks the cross-network routes: per-network answers
// match each network's own route, and the top-k merge is deterministic,
// cohesion-ordered and network-annotated.
func TestQueryAllEndpoint(t *testing.T) {
	fs, fed, trees := newFederatedServer(t, federation.Options{CacheSize: 32})
	rec := get(t, fs, "/api/v1/queryall?alpha=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("queryall status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp QueryAllResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Results) != 3 || len(resp.Communities) != 0 {
		t.Fatalf("queryall returned %d results and %d merged communities, want 3 and 0",
			len(resp.Results), len(resp.Communities))
	}
	for i, nr := range resp.Results {
		if i > 0 && resp.Results[i-1].Network >= nr.Network {
			t.Fatalf("results not in network order")
		}
		if nr.RetrievedNodes != trees[nr.Network].QueryByAlpha(0).RetrievedNodes {
			t.Fatalf("network %q retrieved %d nodes, tree says %d",
				nr.Network, nr.RetrievedNodes, trees[nr.Network].QueryByAlpha(0).RetrievedNodes)
		}
	}

	// Top-k merge: deterministic across repeated calls, annotated with
	// networks, and consistent with the federation API.
	first := get(t, fs, "/api/v1/queryall?alpha=0&k=10")
	if first.Code != http.StatusOK {
		t.Fatalf("queryall k=10 status = %d: %s", first.Code, first.Body.String())
	}
	for rep := 0; rep < 2; rep++ {
		again := get(t, fs, "/api/v1/queryall?alpha=0&k=10")
		if again.Body.String() != first.Body.String() {
			t.Fatalf("cross-network top-k is not deterministic:\n%s\nvs\n%s",
				again.Body.String(), first.Body.String())
		}
	}
	var merged QueryAllResponse
	if err := json.Unmarshal(first.Body.Bytes(), &merged); err != nil {
		t.Fatalf("decode merged: %v", err)
	}
	if len(merged.Communities) == 0 || len(merged.Communities) > 10 {
		t.Fatalf("merged %d communities, want 1..10", len(merged.Communities))
	}
	networks := map[string]bool{}
	for i, c := range merged.Communities {
		if _, ok := fed.Network(c.Network); !ok {
			t.Fatalf("community %d labelled with unknown network %q", i, c.Network)
		}
		networks[c.Network] = true
		if i > 0 && merged.Communities[i-1].Cohesion < c.Cohesion {
			t.Fatalf("merge not cohesion-ordered at %d", i)
		}
	}
	if len(networks) < 2 {
		t.Fatalf("merged top-k covers %d network(s), want a cross-network merge", len(networks))
	}

	// Pattern resolution is per network: numeric ids pass through, and each
	// network answers only sub-patterns of the resolved set.
	item := trees["bk"].Root().Children[0].Item
	rec = get(t, fs, "/api/v1/queryall?alpha=0&pattern="+strconv.Itoa(int(item)))
	if rec.Code != http.StatusOK {
		t.Fatalf("pattern queryall status = %d: %s", rec.Code, rec.Body.String())
	}
	var patterned QueryAllResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &patterned); err != nil {
		t.Fatalf("decode patterned: %v", err)
	}
	for _, nr := range patterned.Results {
		want := trees[nr.Network].Query(itemset.New(item), 0)
		if nr.RetrievedNodes != want.RetrievedNodes {
			t.Fatalf("network %q pattern answer retrieved %d, tree says %d",
				nr.Network, nr.RetrievedNodes, want.RetrievedNodes)
		}
	}
}
