package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/federation"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// buildUpdatableNetwork generates a network like the federation tests do,
// returning the network itself so updates can be applied to it.
func buildUpdatableNetwork(t *testing.T, seed int64) *dbnet.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := dbnet.New(16)
	for i := 0; i < 40; i++ {
		a, b := graph.VertexID(rng.Intn(16)), graph.VertexID(rng.Intn(16))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < 16; v++ {
		for i := 0; i < 1+rng.Intn(4); i++ {
			tx := make([]itemset.Item, 1+rng.Intn(3))
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(5))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return nw
}

// newUpdatableServer builds a single-network server holding its database
// network, so POST /api/v1/update is enabled. The network file path is
// returned for write-back assertions.
func newUpdatableServer(t *testing.T, seed int64) (*Server, *dbnet.Network, string) {
	t.Helper()
	nw := buildUpdatableNetwork(t, seed)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if tree.NumNodes() == 0 {
		t.Fatalf("seed %d built an empty tree", seed)
	}
	netPath := filepath.Join(t.TempDir(), "net.dbnet")
	if err := dbnet.WriteFile(netPath, nw, nil); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	s, err := New(tree, Options{Network: nw, NetworkPath: netPath})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, nw, netPath
}

func TestUpdateEndpoint(t *testing.T) {
	s, nw, netPath := newUpdatableServer(t, 11)

	body := `{"addVertices": 1, "addEdges": [[0,16],[1,16]], "addTransactions": [{"vertex": 16, "items": ["1","2"]}]}`
	rec := post(t, s, "/api/v1/update", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("update status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp UpdateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.AffectedItems) == 0 {
		t.Fatalf("update affected no items: %s", rec.Body.String())
	}
	if resp.IndexEpoch == 0 {
		t.Fatalf("update did not bump the index epoch: %s", rec.Body.String())
	}

	// The served index now answers like a from-scratch rebuild of the
	// updated network.
	freshTree := tctree.Build(nw, tctree.BuildOptions{})
	fresh, err := New(freshTree, Options{})
	if err != nil {
		t.Fatalf("fresh server: %v", err)
	}
	for _, url := range []string{"/api/v1/query?alpha=0", "/api/v1/query?alpha=0.2", "/api/v1/query?pattern=1,2&alpha=0"} {
		got := get(t, s, url)
		want := get(t, fresh, url)
		if got.Code != http.StatusOK || want.Code != http.StatusOK {
			t.Fatalf("%s: status %d vs %d", url, got.Code, want.Code)
		}
		if normalize(got.Body.String()) != normalize(want.Body.String()) {
			t.Fatalf("%s diverges from fresh rebuild:\n got %s\nwant %s", url, got.Body.String(), want.Body.String())
		}
	}
	// The updated network was written back.
	reread, _, err := dbnet.ReadFile(netPath)
	if err != nil {
		t.Fatalf("ReadFile after write-back: %v", err)
	}
	if reread.NumVertices() != nw.NumVertices() || reread.NumEdges() != nw.NumEdges() {
		t.Fatalf("written-back network |V|=%d,|E|=%d, want |V|=%d,|E|=%d",
			reread.NumVertices(), reread.NumEdges(), nw.NumVertices(), nw.NumEdges())
	}

	// Engine stats surface the epoch and the delta count.
	var stats map[string]any
	if err := json.Unmarshal(get(t, s, "/api/v1/enginestats").Body.Bytes(), &stats); err != nil {
		t.Fatalf("enginestats: %v", err)
	}
	if stats["indexEpoch"].(float64) != float64(resp.IndexEpoch) {
		t.Fatalf("enginestats indexEpoch = %v, want %d", stats["indexEpoch"], resp.IndexEpoch)
	}
	if stats["deltasApplied"].(float64) != 1 {
		t.Fatalf("enginestats deltasApplied = %v, want 1", stats["deltasApplied"])
	}
}

func TestUpdateDisabledWithoutNetwork(t *testing.T) {
	s, _ := newTestServer(t) // no Options.Network
	rec := post(t, s, "/api/v1/update", `{"addVertices": 1}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("update without a network: status = %d, want 409", rec.Code)
	}
	assertJSONError(t, rec)
}

func TestUpdateBadRequests(t *testing.T) {
	s, _, _ := newUpdatableServer(t, 11)
	cases := []struct {
		name, body string
	}{
		{"invalid json", `{"addEdges": nope}`},
		{"empty delta", `{}`},
		{"self-loop", `{"addEdges": [[3,3]]}`},
		{"vertex out of range", `{"addEdges": [[0,99]]}`},
		{"negative vertex", `{"addTransactions": [{"vertex": -1, "items": ["1"]}]}`},
		{"empty transaction", `{"addTransactions": [{"vertex": 0, "items": []}]}`},
		{"named item without dictionary", `{"addTransactions": [{"vertex": 0, "items": ["coffee"]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, s, "/api/v1/update", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body.String())
			}
			assertJSONError(t, rec)
		})
	}
	// Wrong method.
	rec := get(t, s, "/api/v1/update")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET update: status = %d, want 405", rec.Code)
	}
	assertJSONError(t, rec)
}

// TestFederationUpdateRoute updates one tenant through the {network} route
// and asserts the other tenants' answers and cache entries survive.
func TestFederationUpdateRoute(t *testing.T) {
	fed := federation.New(federation.Options{CacheSize: 64})
	nws := make(map[string]*dbnet.Network)
	for name, seed := range fedSeeds {
		nw := buildUpdatableNetwork(t, seed)
		nws[name] = nw
		tree := tctree.Build(nw, tctree.BuildOptions{})
		dir := t.TempDir()
		if _, err := tree.WriteSharded(dir); err != nil {
			t.Fatal(err)
		}
		idx, err := tctree.OpenSharded(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := fed.AttachIndex(name, idx, federation.NetworkOptions{Network: nw}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(nil, Options{Federation: fed})
	if err != nil {
		t.Fatal(err)
	}

	// Warm every tenant's cache, snapshot an untouched tenant's answer.
	for name := range fedSeeds {
		if rec := get(t, s, "/api/v1/"+name+"/query?alpha=0.1"); rec.Code != http.StatusOK {
			t.Fatalf("%s warm query: %d", name, rec.Code)
		}
	}
	bkBefore := get(t, s, "/api/v1/bk/query?alpha=0.1").Body.String()

	rec := post(t, s, "/api/v1/aminer/update", `{"addTransactions": [{"vertex": 0, "items": ["1"]}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("federated update: status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp UpdateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Network != "aminer" {
		t.Fatalf("update response network = %q, want aminer", resp.Network)
	}

	// The untouched tenant answers identically (and from its intact cache).
	if after := get(t, s, "/api/v1/bk/query?alpha=0.1").Body.String(); normalize(after) != normalize(bkBefore) {
		t.Fatalf("untouched tenant's answer changed:\n before %s\n after %s", bkBefore, after)
	}
	// The updated tenant matches a from-scratch rebuild.
	freshTree := tctree.Build(nws["aminer"], tctree.BuildOptions{})
	fresh, err := New(freshTree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := get(t, s, "/api/v1/aminer/query?alpha=0")
	want := get(t, fresh, "/api/v1/query?alpha=0")
	if normalize(got.Body.String()) != normalize(want.Body.String()) {
		t.Fatalf("updated tenant diverges from fresh rebuild:\n got %s\nwant %s", got.Body.String(), want.Body.String())
	}

	// A tenant attached without its network rejects updates with 409.
	tree := buildFedTree(t, 17)
	if err := fed.AttachTree("frozen", tree, federation.NetworkOptions{}); err != nil {
		t.Fatal(err)
	}
	rec = post(t, s, "/api/v1/frozen/update", `{"addVertices": 1}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("update without network: status = %d, want 409", rec.Code)
	}
	assertJSONError(t, rec)

	// Unknown networks 404 identically to the other {network} routes.
	rec = post(t, s, "/api/v1/nosuch/update", `{"addVertices": 1}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown network update: status = %d, want 404", rec.Code)
	}
	assertJSONError(t, rec)
}

// assertJSONError asserts an error response carries the JSON content type
// and an "error" field — the contract every API error follows.
func assertJSONError(t *testing.T, rec *httptest.ResponseRecorder) {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response Content-Type = %q, want application/json", ct)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || strings.TrimSpace(e.Error) == "" {
		t.Fatalf("error body is not a JSON error object: %s", rec.Body.String())
	}
}

// TestErrorResponsesAreJSON audits the API error paths: every error —
// including unknown routes, which the stock mux would answer in plain text —
// must be a JSON object with an "error" field and the JSON content type.
func TestErrorResponsesAreJSON(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []struct {
		name, method, url string
		wantStatus        int
	}{
		{"bad alpha", http.MethodGet, "/api/v1/query?alpha=minus", http.StatusBadRequest},
		{"bad k", http.MethodGet, "/api/v1/query?alpha=0&k=0", http.StatusBadRequest},
		{"bad vertex", http.MethodGet, "/api/v1/vertex?id=x", http.StatusBadRequest},
		{"method not allowed", http.MethodPost, "/api/v1/query", http.StatusMethodNotAllowed},
		{"batch via GET", http.MethodGet, "/api/v1/batch", http.StatusMethodNotAllowed},
		{"unknown api route", http.MethodGet, "/api/v1/nosuchroute", http.StatusNotFound},
		{"unknown root route", http.MethodGet, "/nosuch", http.StatusNotFound},
		{"federation route without federation", http.MethodGet, "/api/v1/somewhere/query?alpha=0", http.StatusNotFound},
		{"queryall without federation", http.MethodGet, "/api/v1/queryall?alpha=0", http.StatusNotFound},
		{"update disabled", http.MethodPost, "/api/v1/update", http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := get(t, s, tc.url)
			if tc.method == http.MethodPost {
				rec = post(t, s, tc.url, `{}`)
			}
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q, want application/json (body %s)", ct, rec.Body.String())
			}
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, rec.Body.String())
			}
			if strings.TrimSpace(e.Error) == "" {
				t.Fatalf("error body has no message: %s", rec.Body.String())
			}
		})
	}
}
