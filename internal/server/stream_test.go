package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"themecomm/internal/engine"
	"themecomm/internal/federation"
	"themecomm/internal/tctree"
)

// This file tests the HTTP streaming surface end to end: NDJSON framing,
// cursor pagination (including the 410 a moved index answers to a stale
// cursor), and the queryall stream — each compared against the materializing
// response of the same query.

// ndjsonLines is a streaming response body decoded into its typed lines.
type ndjsonLines struct {
	header      StreamHeader
	communities []StreamCommunity
	trailer     *StreamTrailer
	errLine     *StreamError
}

func parseNDJSON(t *testing.T, body string) ndjsonLines {
	t.Helper()
	var out ndjsonLines
	sawHeader := false
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &kind); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", line, err)
		}
		switch kind.Type {
		case "header":
			if sawHeader {
				t.Fatalf("second header line")
			}
			sawHeader = true
			if err := json.Unmarshal([]byte(line), &out.header); err != nil {
				t.Fatalf("bad header: %v", err)
			}
		case "community":
			if out.trailer != nil || out.errLine != nil {
				t.Fatalf("community line after the terminal line")
			}
			var c StreamCommunity
			if err := json.Unmarshal([]byte(line), &c); err != nil {
				t.Fatalf("bad community: %v", err)
			}
			out.communities = append(out.communities, c)
		case "trailer":
			var tr StreamTrailer
			if err := json.Unmarshal([]byte(line), &tr); err != nil {
				t.Fatalf("bad trailer: %v", err)
			}
			out.trailer = &tr
		case "error":
			var se StreamError
			if err := json.Unmarshal([]byte(line), &se); err != nil {
				t.Fatalf("bad error line: %v", err)
			}
			out.errLine = &se
		default:
			t.Fatalf("unknown line type %q in %q", kind.Type, line)
		}
	}
	if !sawHeader {
		t.Fatalf("stream had no header line")
	}
	return out
}

func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ab) == string(bb)
}

func sameCommunities(t *testing.T, label string, got []StreamCommunity, want []CommunityResponse) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: streamed %d communities, materialized %d", label, len(got), len(want))
	}
	for i := range got {
		if !jsonEqual(t, got[i].CommunityResponse, want[i]) {
			g, _ := json.Marshal(got[i].CommunityResponse)
			w, _ := json.Marshal(want[i])
			t.Fatalf("%s: community %d differs:\nstream:      %s\nmaterialize: %s", label, i, g, w)
		}
	}
}

// TestStreamNDJSONParity: ?stream=1 must deliver exactly the materializing
// answer — same communities, same order, same traversal counters — framed as
// header/community.../trailer NDJSON, for plain, top-k and patterned queries.
func TestStreamNDJSONParity(t *testing.T) {
	s, _ := newTestServer(t)
	for _, params := range []string{
		"alpha=0.2",
		"alpha=0.1&k=5",
		"alpha=0.2&k=1",
		"pattern=data+mining,sequential+pattern&alpha=0.1",
	} {
		rec := get(t, s, "/api/v1/query?"+params)
		if rec.Code != http.StatusOK {
			t.Fatalf("materializing query: %d", rec.Code)
		}
		var want QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &want); err != nil {
			t.Fatal(err)
		}

		srec := get(t, s, "/api/v1/query?"+params+"&stream=1")
		if srec.Code != http.StatusOK {
			t.Fatalf("stream query: %d, body %s", srec.Code, srec.Body.String())
		}
		if ct := srec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("Content-Type = %q", ct)
		}
		lines := parseNDJSON(t, srec.Body.String())
		if lines.errLine != nil {
			t.Fatalf("stream errored: %+v", lines.errLine)
		}
		if lines.trailer == nil {
			t.Fatalf("stream had no trailer")
		}
		sameCommunities(t, params, lines.communities, want.Communities)
		if lines.header.Alpha != want.Alpha || lines.header.TopK != want.TopK {
			t.Fatalf("header %+v does not match query alpha=%g topK=%d", lines.header, want.Alpha, want.TopK)
		}
		if !jsonEqual(t, lines.header.Pattern, want.Pattern) {
			t.Fatalf("header pattern %v, query echoed %v", lines.header.Pattern, want.Pattern)
		}
		if lines.trailer.Emitted != len(want.Communities) {
			t.Fatalf("trailer emitted %d, want %d", lines.trailer.Emitted, len(want.Communities))
		}
		if want.TopK == 0 {
			// Plain streams visit exactly what the materializing query visits.
			if lines.trailer.RetrievedNodes != want.RetrievedNodes || lines.trailer.VisitedNodes != want.VisitedNodes {
				t.Fatalf("trailer counters %+v; query counters retrieved=%d visited=%d",
					lines.trailer, want.RetrievedNodes, want.VisitedNodes)
			}
		} else if lines.trailer.RetrievedNodes > want.RetrievedNodes || lines.trailer.VisitedNodes > want.VisitedNodes {
			// Top-k streams short-circuit shards, so they may visit fewer
			// nodes than the materializing top-k — never more.
			t.Fatalf("top-k stream visited more than materializing: %+v vs retrieved=%d visited=%d",
				lines.trailer, want.RetrievedNodes, want.VisitedNodes)
		}
		if lines.trailer.NextCursor != "" {
			t.Fatalf("unlimited stream minted a cursor")
		}
	}
}

// TestStreamShortCircuitOverHTTP: a selective top-k stream against a lazy
// server must report shardsShortCircuited > 0 in its trailer — the HTTP-level
// proof that scheduled shards were ruled out by the α* bound and never loaded
// from disk.
func TestStreamShortCircuitOverHTTP(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		tree := buildFedTree(t, seed)
		dir := t.TempDir()
		if _, err := tree.WriteSharded(dir); err != nil {
			t.Fatalf("WriteSharded: %v", err)
		}
		idx, err := tctree.OpenSharded(dir)
		if err != nil {
			t.Fatalf("OpenSharded: %v", err)
		}
		eng, err := engine.NewLazy(idx, engine.Options{})
		if err != nil {
			t.Fatalf("NewLazy: %v", err)
		}
		s, err := New(nil, Options{Engine: eng})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rec := get(t, s, "/api/v1/query?alpha=0&k=1&stream=1")
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d, body %s", rec.Code, rec.Body.String())
		}
		lines := parseNDJSON(t, rec.Body.String())
		if lines.trailer == nil || lines.errLine != nil {
			t.Fatalf("malformed stream: %s", rec.Body.String())
		}
		if lines.trailer.ShardsShortCircuited == 0 {
			continue
		}
		if len(lines.communities) != 1 {
			t.Fatalf("k=1 stream emitted %d communities", len(lines.communities))
		}
		// The short-circuited shards never reached the disk.
		stats := eng.Stats()
		if stats.LazyLoads >= uint64(stats.Shards) {
			t.Fatalf("every shard was loaded (%d of %d)", stats.LazyLoads, stats.Shards)
		}
		return
	}
	t.Fatalf("no seed in 1..20 short-circuited over HTTP")
}

// TestCursorPagination: paging with ?limit walks the whole answer; the
// concatenated pages equal the unpaginated response and the last page mints
// no cursor. The cursor alone carries the query — follow-up requests send no
// pattern/alpha/k parameters.
func TestCursorPagination(t *testing.T) {
	s, _ := newTestServer(t)
	for _, tc := range []struct {
		params  string
		perPage string
		minSize int
	}{
		{"alpha=0", "2", 3},
		{"alpha=0&k=7", "2", 3},
		{"pattern=data+mining,sequential+pattern&alpha=0", "1", 1},
	} {
		rec := get(t, s, "/api/v1/query?"+tc.params)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d", tc.params, rec.Code)
		}
		var want QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &want); err != nil {
			t.Fatal(err)
		}
		if len(want.Communities) < tc.minSize {
			t.Fatalf("%s: answer too small (%d) to exercise pagination", tc.params, len(want.Communities))
		}
		if want.NextCursor != "" {
			t.Fatalf("%s: unlimited query minted a cursor", tc.params)
		}

		var pages []CommunityResponse
		url := "/api/v1/query?" + tc.params + "&limit=" + tc.perPage
		for hop := 0; ; hop++ {
			if hop > len(want.Communities) {
				t.Fatalf("%s: pagination did not terminate", tc.params)
			}
			prec := get(t, s, url)
			if prec.Code != http.StatusOK {
				t.Fatalf("%s page %d: status %d, body %s", tc.params, hop, prec.Code, prec.Body.String())
			}
			var page QueryResponse
			if err := json.Unmarshal(prec.Body.Bytes(), &page); err != nil {
				t.Fatal(err)
			}
			if len(page.Communities) > 2 {
				t.Fatalf("%s page %d has %d communities", tc.params, hop, len(page.Communities))
			}
			pages = append(pages, page.Communities...)
			if page.NextCursor == "" {
				break
			}
			url = "/api/v1/query?limit=" + tc.perPage + "&cursor=" + page.NextCursor
		}
		if len(pages) != len(want.Communities) {
			t.Fatalf("%s: pages delivered %d communities, unpaginated answer has %d",
				tc.params, len(pages), len(want.Communities))
		}
		for i := range pages {
			if !jsonEqual(t, pages[i], want.Communities[i]) {
				g, _ := json.Marshal(pages[i])
				w, _ := json.Marshal(want.Communities[i])
				t.Fatalf("%s community %d: page gave %s, unpaginated %s", tc.params, i, g, w)
			}
		}
	}
}

// TestStreamNDJSONPaging: the NDJSON form of pagination — a limited stream
// carries its next cursor in the trailer, and resuming over NDJSON walks the
// same answer.
func TestStreamNDJSONPaging(t *testing.T) {
	s, _ := newTestServer(t)
	rec := get(t, s, "/api/v1/query?alpha=0")
	var want QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	var got []StreamCommunity
	url := "/api/v1/query?alpha=0&stream=1&limit=2"
	for hop := 0; ; hop++ {
		if hop > len(want.Communities) {
			t.Fatalf("NDJSON pagination did not terminate")
		}
		srec := get(t, s, url)
		if srec.Code != http.StatusOK {
			t.Fatalf("page %d: %d", hop, srec.Code)
		}
		lines := parseNDJSON(t, srec.Body.String())
		if lines.errLine != nil || lines.trailer == nil {
			t.Fatalf("page %d malformed: %s", hop, srec.Body.String())
		}
		got = append(got, lines.communities...)
		if lines.trailer.NextCursor == "" {
			break
		}
		url = "/api/v1/query?stream=1&limit=2&cursor=" + lines.trailer.NextCursor
	}
	sameCommunities(t, "ndjson pages", got, want.Communities)
}

// TestCursorBadRequests: malformed cursors, foreign-network cursors and bad
// stream/limit parameters are 400s.
func TestCursorBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	for _, url := range []string{
		"/api/v1/query?cursor=%21%21%21",
		"/api/v1/query?cursor=" + encodeCursor(cursor{V: 99}),
		"/api/v1/query?cursor=" + encodeCursor(cursor{V: cursorVersion, Network: "elsewhere"}),
		"/api/v1/query?alpha=0.2&stream=yes",
		"/api/v1/query?alpha=0.2&limit=0",
		"/api/v1/query?alpha=0.2&limit=nope",
	} {
		rec := get(t, s, url)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (body %s)", url, rec.Code, rec.Body.String())
		}
		assertJSONError(t, rec)
	}
}

// TestCursorExpiresWithEpoch: a cursor minted before an applied delta is
// answered with 410 Gone — the remaining pages could mix index epochs.
func TestCursorExpiresWithEpoch(t *testing.T) {
	s, _, _ := newUpdatableServer(t, 11)
	rec := get(t, s, "/api/v1/query?alpha=0&limit=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("first page: %d, body %s", rec.Code, rec.Body.String())
	}
	var page QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.NextCursor == "" {
		t.Fatalf("first page minted no cursor; answer too small")
	}

	// The cursor is valid while the index holds still.
	if rec := get(t, s, "/api/v1/query?cursor="+page.NextCursor+"&limit=1"); rec.Code != http.StatusOK {
		t.Fatalf("pre-delta resume: %d, body %s", rec.Code, rec.Body.String())
	}

	urec := post(t, s, "/api/v1/update", `{"addVertices": 1, "addEdges": [[0,16]]}`)
	if urec.Code != http.StatusOK {
		t.Fatalf("update: %d, body %s", urec.Code, urec.Body.String())
	}

	// JSON resume: 410.
	rec = get(t, s, "/api/v1/query?cursor="+page.NextCursor+"&limit=1")
	if rec.Code != http.StatusGone {
		t.Fatalf("post-delta resume: status %d, want 410 (body %s)", rec.Code, rec.Body.String())
	}
	assertJSONError(t, rec)
	// NDJSON resume: the stale cursor is caught before the stream opens, so
	// the 410 still travels as a status code, not an in-band error line.
	rec = get(t, s, "/api/v1/query?cursor="+page.NextCursor+"&limit=1&stream=1")
	if rec.Code != http.StatusGone {
		t.Fatalf("post-delta NDJSON resume: status %d, want 410", rec.Code)
	}
}

// TestQueryAllStream: the federated NDJSON stream must deliver exactly the
// materializing queryall answer — the cross-network cohesion merge when k is
// given, the per-network concatenation in name order otherwise — and reject
// cursors outright.
func TestQueryAllStream(t *testing.T) {
	s, _, _ := newFederatedServer(t, federation.Options{CacheSize: 16})

	// Plain: the stream equals the per-network answers flattened in order.
	rec := get(t, s, "/api/v1/queryall?alpha=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("queryall: %d", rec.Code)
	}
	var plain QueryAllResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	type tagged struct {
		network string
		c       CommunityResponse
	}
	var want []tagged
	for _, nr := range plain.Results {
		for _, c := range nr.Communities {
			want = append(want, tagged{nr.Network, c})
		}
	}
	srec := get(t, s, "/api/v1/queryall?alpha=0&stream=1")
	if srec.Code != http.StatusOK {
		t.Fatalf("queryall stream: %d, body %s", srec.Code, srec.Body.String())
	}
	if ct := srec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := parseNDJSON(t, srec.Body.String())
	if lines.errLine != nil || lines.trailer == nil {
		t.Fatalf("malformed queryall stream: %s", srec.Body.String())
	}
	if len(lines.communities) != len(want) {
		t.Fatalf("streamed %d communities, materialized %d", len(lines.communities), len(want))
	}
	for i := range want {
		if lines.communities[i].Network != want[i].network {
			t.Fatalf("community %d from network %q, want %q", i, lines.communities[i].Network, want[i].network)
		}
		if !jsonEqual(t, lines.communities[i].CommunityResponse, want[i].c) {
			t.Fatalf("community %d differs from queryall order", i)
		}
	}
	if lines.trailer.Emitted != len(want) {
		t.Fatalf("trailer emitted %d, want %d", lines.trailer.Emitted, len(want))
	}

	// Top-k: the stream equals the materialized cross-network merge.
	rec = get(t, s, "/api/v1/queryall?alpha=0&k=10")
	var merged QueryAllResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}
	if len(merged.Communities) == 0 {
		t.Fatalf("merged top-k is empty")
	}
	srec = get(t, s, "/api/v1/queryall?alpha=0&k=10&stream=1")
	lines = parseNDJSON(t, srec.Body.String())
	if lines.errLine != nil || lines.trailer == nil {
		t.Fatalf("malformed merged stream: %s", srec.Body.String())
	}
	if len(lines.communities) != len(merged.Communities) {
		t.Fatalf("streamed %d merged communities, materialized %d", len(lines.communities), len(merged.Communities))
	}
	for i, mc := range merged.Communities {
		if lines.communities[i].Network != mc.Network || !jsonEqual(t, lines.communities[i].CommunityResponse, mc.CommunityResponse) {
			t.Fatalf("merged community %d differs from materializing queryall", i)
		}
	}

	// A limited stream stops at the limit; no cursor is minted on queryall.
	srec = get(t, s, "/api/v1/queryall?alpha=0&k=10&stream=1&limit=2")
	lines = parseNDJSON(t, srec.Body.String())
	if len(lines.communities) != 2 || lines.trailer == nil || lines.trailer.NextCursor != "" {
		t.Fatalf("limited queryall stream: %s", srec.Body.String())
	}

	// Cursors are rejected on queryall — with or without stream=1 — because
	// members move epochs independently.
	for _, url := range []string{
		"/api/v1/queryall?alpha=0&stream=1&cursor=" + encodeCursor(cursor{V: cursorVersion}),
		"/api/v1/queryall?alpha=0&cursor=" + encodeCursor(cursor{V: cursorVersion}),
	} {
		if rec := get(t, s, url); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", url, rec.Code)
		}
	}
	if rec := get(t, s, "/api/v1/queryall?alpha=0&stream=x"); rec.Code != http.StatusBadRequest {
		t.Fatalf("queryall stream=x: status %d, want 400", rec.Code)
	}
}

// TestNetworkRouteStream: ?stream=1 works on the per-network route, and a
// cursor minted there names its network — replaying it against a different
// network is a 400.
func TestNetworkRouteStream(t *testing.T) {
	s, _, _ := newFederatedServer(t, federation.Options{CacheSize: 16})
	rec := get(t, s, "/api/v1/bk/query?alpha=0")
	var want QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	srec := get(t, s, "/api/v1/bk/query?alpha=0&stream=1")
	if srec.Code != http.StatusOK {
		t.Fatalf("per-network stream: %d, body %s", srec.Code, srec.Body.String())
	}
	lines := parseNDJSON(t, srec.Body.String())
	if lines.errLine != nil || lines.trailer == nil {
		t.Fatalf("malformed per-network stream: %s", srec.Body.String())
	}
	sameCommunities(t, "bk stream", lines.communities, want.Communities)
	if lines.header.Network != "bk" {
		t.Fatalf("header network %q, want bk", lines.header.Network)
	}

	// Mint a cursor on bk, replay it on gw: 400, not another network's data.
	prec := get(t, s, "/api/v1/bk/query?alpha=0&limit=1")
	var page QueryResponse
	if err := json.Unmarshal(prec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.NextCursor == "" {
		t.Fatalf("bk first page minted no cursor")
	}
	if rec := get(t, s, "/api/v1/gw/query?cursor="+page.NextCursor); rec.Code != http.StatusBadRequest {
		t.Fatalf("foreign cursor on gw: status %d, want 400 (body %s)", rec.Code, rec.Body.String())
	}
	if rec := get(t, s, "/api/v1/bk/query?cursor="+page.NextCursor+"&limit=1"); rec.Code != http.StatusOK {
		t.Fatalf("cursor on its own network: status %d", rec.Code)
	}
}
