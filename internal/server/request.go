package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"

	"themecomm/internal/itemset"
)

// This file is the typed request layer: every GET route that accepts the
// query-parameter surface (alpha, pattern, k, contains, stream, limit,
// cursor) parses it through parseQueryRequest into one queryRequest value,
// and every invalid parameter or unsupported combination is rejected here —
// in one place, with one wording — instead of ad hoc per handler. Routes
// declare which parameter groups they support via reqCaps; a parameter a
// route does not support is a 400, never silently ignored.

// reqCaps declares the query-parameter groups a route accepts. Alpha and
// pattern are universal; everything else is opt-in.
type reqCaps uint8

const (
	// capTopK accepts k (top-k ranking).
	capTopK reqCaps = 1 << iota
	// capContains accepts contains (containment semantics).
	capContains
	// capStream accepts stream and limit (NDJSON delivery and paging).
	capStream
	// capCursor accepts cursor (resume a paginated answer).
	capCursor
)

// queryRequest is the typed form of one query-shaped request, shared by the
// query, explain, queryall, vertex and stream routes.
type queryRequest struct {
	// Alpha is the cohesion threshold; 0 when absent.
	Alpha float64
	// Pattern is the resolved query pattern; nil means every item (the
	// query-by-alpha workload). Only resolved when a tenant is given —
	// queryall resolves per network through resolverFor instead.
	Pattern itemset.Itemset
	// RawPattern is the pattern parameter exactly as sent; cursors carry it
	// so a resume re-resolves what the client originally asked.
	RawPattern string
	// Fields is RawPattern split into trimmed non-empty fields, for
	// per-network resolution on queryall.
	Fields []string
	// K is the top-k bound; 0 when absent.
	K int
	// Contains switches to containment semantics (every indexed pattern ⊇ q).
	Contains bool
	// Stream asks for NDJSON delivery.
	Stream bool
	// Limit bounds one page; 0 means unlimited.
	Limit int
	// Cursor resumes a previous page; empty when absent.
	Cursor string
}

// paged reports whether the request diverts to the pull-based executor.
func (q *queryRequest) paged() bool { return q.Stream || q.Cursor != "" || q.Limit > 0 }

// reqError is a typed request rejection: the status and message the route
// answers with. Handlers surface it through its write method so the JSON
// error envelope stays uniform.
type reqError struct {
	status int
	msg    string
}

func badRequestf(format string, args ...any) *reqError {
	return &reqError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func (e *reqError) write(w http.ResponseWriter, r *http.Request) {
	writeError(w, r, e.status, e.msg)
}

// parseQueryRequest parses and validates the query-parameter surface of one
// request. t resolves pattern names and may be nil (queryall: patterns
// resolve per network). Parameters outside the route's caps and invalid
// combinations are rejected with a 400.
func parseQueryRequest(t *tenant, r *http.Request, caps reqCaps) (*queryRequest, *reqError) {
	qp := r.URL.Query()
	req := &queryRequest{}
	if v := qp.Get("alpha"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || parsed < 0 || math.IsNaN(parsed) || math.IsInf(parsed, 0) {
			return nil, badRequestf("invalid alpha %q", v)
		}
		req.Alpha = parsed
	}
	req.RawPattern = qp.Get("pattern")
	req.Fields = patternFields(req.RawPattern)
	if t != nil && req.RawPattern != "" {
		parsed, err := t.parsePattern(req.RawPattern)
		if err != nil {
			return nil, badRequestf("%s", err.Error())
		}
		req.Pattern = parsed
	}
	if v := qp.Get("k"); v != "" {
		if caps&capTopK == 0 {
			return nil, badRequestf("k is not supported on this route")
		}
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			return nil, badRequestf("invalid k %q", v)
		}
		req.K = parsed
	}
	if v := qp.Get("contains"); v != "" {
		if caps&capContains == 0 {
			return nil, badRequestf("contains is not supported on this route")
		}
		parsed, err := strconv.ParseBool(v)
		if err != nil {
			return nil, badRequestf("invalid contains %q", v)
		}
		req.Contains = parsed
	}
	if v := qp.Get("stream"); v != "" {
		if caps&capStream == 0 {
			return nil, badRequestf("streaming is not supported on this route")
		}
		switch v {
		case "1", "true":
			req.Stream = true
		case "0", "false":
		default:
			return nil, badRequestf("invalid stream %q (use 1 or true)", v)
		}
	}
	if v := qp.Get("limit"); v != "" {
		if caps&capStream == 0 {
			return nil, badRequestf("limit is not supported on this route")
		}
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			return nil, badRequestf("invalid limit %q", v)
		}
		req.Limit = parsed
	}
	if v := qp.Get("cursor"); v != "" {
		if caps&capCursor == 0 {
			return nil, badRequestf("cursor pagination is not supported on this route; use limit with fresh requests")
		}
		req.Cursor = v
	}
	if req.Contains {
		if req.K > 0 {
			return nil, badRequestf("contains cannot be combined with k (top-k ranks sub-pattern answers)")
		}
		if req.paged() {
			return nil, badRequestf("contains cannot be combined with stream, cursor or limit")
		}
	}
	return req, nil
}
