package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/federation"
	"themecomm/internal/journal"
	"themecomm/internal/obs"
	"themecomm/internal/replication"
	"themecomm/internal/tctree"
)

// newPrimaryServer builds an observed federated server whose one network is a
// replication-primary member: updates take the journaled fast path and
// GET /api/v1/journal serves the feed. The primary's background loop stays
// off (checkpoints on demand only) so tests control durability.
func newPrimaryServer(t *testing.T) (*Server, *replication.Primary) {
	t.Helper()
	dir := t.TempDir()
	nw := buildUpdatableNetwork(t, 17)
	sub := filepath.Join(dir, "alpha")
	if err := os.MkdirAll(filepath.Join(sub, "index"), 0o755); err != nil {
		t.Fatal(err)
	}
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if tree.NumNodes() == 0 {
		t.Fatal("seed built an empty tree")
	}
	if _, err := tree.WriteSharded(filepath.Join(sub, "index")); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	netPath := filepath.Join(sub, "network.dbnet")
	if err := dbnet.WriteFile(netPath, nw, nil); err != nil {
		t.Fatalf("write network: %v", err)
	}

	fed := federation.New(federation.Options{CacheSize: 64})
	loaded, dict, err := dbnet.ReadFile(netPath)
	if err != nil {
		t.Fatalf("read network: %v", err)
	}
	idx, err := tctree.OpenSharded(filepath.Join(sub, "index"))
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if err := fed.AttachIndex("alpha", idx, federation.NetworkOptions{
		Network: loaded, Dictionary: dict, NetworkPath: netPath,
	}); err != nil {
		t.Fatalf("AttachIndex: %v", err)
	}

	j, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	p := replication.NewPrimary(j, replication.PrimaryOptions{CheckpointInterval: -1})
	n, _ := fed.Network("alpha")
	if err := p.Add(n); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if _, err := p.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}

	s, err := New(nil, Options{Federation: fed, Primary: p, Obs: obs.NewObserver(obs.ObserverOptions{})})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, p
}

// journalFrames decodes an NDJSON journal feed into generic frames.
func journalFrames(t *testing.T, body string) []map[string]any {
	t.Helper()
	var frames []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var f map[string]any
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("bad feed line %q: %v", line, err)
		}
		frames = append(frames, f)
	}
	return frames
}

// TestPrimaryServerJournalFlow drives the full primary-side HTTP surface:
// updates get journal sequence numbers, the journal feed replays them as
// record frames closed by a head frame, ?from resumes mid-stream, and the
// role state shows up in /healthz, federationstats and the metrics.
func TestPrimaryServerJournalFlow(t *testing.T) {
	s, _ := newPrimaryServer(t)

	// Two journaled updates; each response carries its journal seq.
	bodies := []string{
		`{"addVertices": 1, "addEdges": [[0,16],[1,16]], "addTransactions": [{"vertex": 16, "items": ["1","2"]}]}`,
		`{"addTransactions": [{"vertex": 0, "items": ["3"]}]}`,
	}
	for i, body := range bodies {
		rec := post(t, s, "/api/v1/alpha/update", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("update %d: status %d, body %s", i, rec.Code, rec.Body.String())
		}
		var resp UpdateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("update %d: decode: %v", i, err)
		}
		if want := uint64(i + 1); resp.JournalSeq != want {
			t.Fatalf("update %d: journalSeq = %d, want %d (body %s)", i, resp.JournalSeq, want, rec.Body.String())
		}
	}

	// The feed replays both records, then marks the durable head.
	rec := get(t, s, "/api/v1/journal")
	if rec.Code != http.StatusOK {
		t.Fatalf("journal status = %d, body %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("journal Content-Type = %q", ct)
	}
	frames := journalFrames(t, rec.Body.String())
	if len(frames) != 3 {
		t.Fatalf("journal feed has %d frames, want 3: %s", len(frames), rec.Body.String())
	}
	for i := 0; i < 2; i++ {
		f := frames[i]
		if f["type"] != "record" || f["seq"].(float64) != float64(i+1) || f["network"] != "alpha" {
			t.Fatalf("frame %d = %v, want record seq %d network alpha", i, f, i+1)
		}
		if f["payload"].(string) == "" {
			t.Fatalf("frame %d has an empty payload", i)
		}
	}
	if f := frames[2]; f["type"] != "head" || f["seq"].(float64) != 2 {
		t.Fatalf("closing frame = %v, want head seq 2", f)
	}

	// ?from resumes after the cursor; a caught-up cursor gets just the head.
	frames = journalFrames(t, get(t, s, "/api/v1/journal?from=1").Body.String())
	if len(frames) != 2 || frames[0]["seq"].(float64) != 2 || frames[1]["type"] != "head" {
		t.Fatalf("from=1 frames = %v", frames)
	}
	frames = journalFrames(t, get(t, s, "/api/v1/journal?from=2").Body.String())
	if len(frames) != 1 || frames[0]["type"] != "head" {
		t.Fatalf("from=2 frames = %v", frames)
	}

	// Malformed cursor parameters are 400s.
	for _, url := range []string{"/api/v1/journal?from=x", "/api/v1/journal?wait=x", "/api/v1/journal?wait=-1"} {
		if rec := get(t, s, url); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", url, rec.Code)
		}
	}

	// The role state reaches /healthz and federationstats.
	var health HealthResponse
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health.Replication == nil || health.Replication.Role != "primary" || health.Replication.JournalSeq != 2 {
		t.Fatalf("healthz replication = %+v", health.Replication)
	}
	var fs FederationStatsResponse
	if err := json.Unmarshal(get(t, s, "/api/v1/federationstats").Body.Bytes(), &fs); err != nil {
		t.Fatalf("federationstats: %v", err)
	}
	if fs.Replication == nil || fs.Replication.Role != "primary" {
		t.Fatalf("federationstats replication = %+v", fs.Replication)
	}
	if ns, ok := fs.Replication.Networks["alpha"]; !ok || ns.AppliedSeq != 2 {
		t.Fatalf("federationstats networks = %+v", fs.Replication.Networks)
	}

	// The metric collectors sample the journal and per-member progress.
	metrics := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"tc_journal_seq 2",
		"tc_journal_appends_total 2",
		`tc_replication_applied_seq{network="alpha"} 2`,
		"tc_replica_lag_records 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// The journaled updates are live: the served answers match a fresh
	// rebuild of the same network after the same deltas.
	nw := buildUpdatableNetwork(t, 17)
	applyUpdateJSON(t, nw, bodies...)
	// Round-trip through the network file so the reference server renders
	// items through the same synthesized dictionary the primary loaded.
	freshPath := filepath.Join(t.TempDir(), "fresh.dbnet")
	if err := dbnet.WriteFile(freshPath, nw, nil); err != nil {
		t.Fatalf("write fresh network: %v", err)
	}
	freshNW, freshDict, err := dbnet.ReadFile(freshPath)
	if err != nil {
		t.Fatalf("read fresh network: %v", err)
	}
	// AttachIndex pads the primary's dictionary with item-<id> placeholders;
	// mirror that so both servers render theme names identically.
	freshDict.PadTo(16)
	fresh, err := New(tctree.Build(freshNW, tctree.BuildOptions{}), Options{Dictionary: freshDict})
	if err != nil {
		t.Fatalf("fresh server: %v", err)
	}
	for _, url := range []string{"/api/v1/query?alpha=0", "/api/v1/query?pattern=1,2&alpha=0.1"} {
		got, want := get(t, s, "/api/v1/alpha"+url[7:]), get(t, fresh, url)
		if got.Code != http.StatusOK || want.Code != http.StatusOK {
			t.Fatalf("%s: status %d vs %d", url, got.Code, want.Code)
		}
		if normalize(got.Body.String()) != normalize(want.Body.String()) {
			t.Fatalf("%s diverges from fresh rebuild:\n got %s\nwant %s", url, got.Body.String(), want.Body.String())
		}
	}
}

// applyUpdateJSON replays serveUpdate request bodies directly onto a network,
// mirroring what the journaled path applied on the server.
func applyUpdateJSON(t *testing.T, nw *dbnet.Network, bodies ...string) {
	t.Helper()
	tn := &tenant{dict: nil}
	for _, body := range bodies {
		var req UpdateRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("decode body: %v", err)
		}
		d, err := tn.parseUpdate(&req)
		if err != nil {
			t.Fatalf("parseUpdate: %v", err)
		}
		if err := d.Validate(nw); err != nil {
			t.Fatalf("validate: %v", err)
		}
		if err := delta.Apply(nw, d); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
}

// TestJournalNotFoundWithoutPrimary: the journal route exists on every server
// but only a primary serves it.
func TestJournalNotFoundWithoutPrimary(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := get(t, s, "/api/v1/journal"); rec.Code != http.StatusNotFound {
		t.Fatalf("journal on non-primary = %d, want 404", rec.Code)
	}
}

// TestReadOnlyReplicaRejectsWrites: a replica answers reads normally but
// turns every update into a 403 that points at the primary.
func TestReadOnlyReplicaRejectsWrites(t *testing.T) {
	nw := buildUpdatableNetwork(t, 17)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	status := replication.Status{Role: "replica", HeadSeq: 5, JournalSeq: 3, LagRecords: 2}
	s, err := New(tree, Options{
		Network:           nw,
		ReadOnly:          true,
		PrimaryURL:        "http://primary:9000/",
		ReplicationStatus: func() replication.Status { return status },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	if rec := get(t, s, "/api/v1/query?alpha=0"); rec.Code != http.StatusOK {
		t.Fatalf("replica read = %d, want 200", rec.Code)
	}

	rec := post(t, s, "/api/v1/update", `{"addTransactions": [{"vertex": 0, "items": ["3"]}]}`)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("replica update = %d, want 403 (body %s)", rec.Code, rec.Body.String())
	}
	if loc := rec.Header().Get("Location"); loc != "http://primary:9000/api/v1/update" {
		t.Fatalf("Location = %q", loc)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Status != http.StatusForbidden {
		t.Fatalf("replica 403 envelope: %v (body %s)", err, rec.Body.String())
	}

	// The injected status feeds /healthz.
	var health HealthResponse
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health.Replication == nil || health.Replication.Role != "replica" || health.Replication.LagRecords != 2 {
		t.Fatalf("healthz replication = %+v", health.Replication)
	}
}
