package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"themecomm/internal/engine"
	"themecomm/internal/federation"
	"themecomm/internal/obs"
	"themecomm/internal/obs/promtest"
	"themecomm/internal/tctree"
)

// newObservedServer builds a single-network server with the full
// observability layer: one observer shared between the engine (Recorder) and
// the server (Obs), with a threshold that captures every executed query into
// the slow log.
func newObservedServer(t *testing.T) (*Server, *obs.Observer) {
	t.Helper()
	o := obs.NewObserver(obs.ObserverOptions{SlowThreshold: time.Nanosecond})
	tree := buildFedTree(t, 7)
	eng, err := engine.New(tree, engine.Options{CacheSize: 8, Recorder: o})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	s, err := New(nil, Options{Engine: eng, Obs: o})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, o
}

// getWithID issues a GET with a client-supplied X-Request-ID.
func getWithID(t *testing.T, s *Server, url, id string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	if id != "" {
		req.Header.Set(obs.HeaderRequestID, id)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// scrape fetches /metrics and parses it against the exposition grammar — the
// parser-roundtrip check of the served payload.
func scrape(t *testing.T, s *Server) map[string]*promtest.Family {
	t.Helper()
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	fams, err := promtest.Parse(rec.Body.String())
	if err != nil {
		t.Fatalf("/metrics violates the exposition grammar: %v", err)
	}
	return fams
}

// sampleValue sums the family's samples of the given name whose labels match
// want; n counts them.
func sampleValue(fam *promtest.Family, name string, want map[string]string) (total float64, n int) {
	if fam == nil {
		return 0, 0
	}
	for _, smp := range fam.Samples {
		if smp.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if smp.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += smp.Value
			n++
		}
	}
	return total, n
}

// TestServerMetricsEndToEnd drives a query with an injected request ID
// through the observed server and checks the whole pipeline: header echo,
// valid /metrics exposing engine + query + HTTP families that moved, and the
// slow-query log carrying the request ID and the full plan.
func TestServerMetricsEndToEnd(t *testing.T) {
	s, _ := newObservedServer(t)

	rec := getWithID(t, s, "/api/v1/query?alpha=0.2", "test-req-1")
	if rec.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(obs.HeaderRequestID); got != "test-req-1" {
		t.Fatalf("echoed request ID = %q, want test-req-1", got)
	}
	// Without a client ID the server assigns one.
	rec = getWithID(t, s, "/api/v1/query?alpha=0.2", "")
	if got := rec.Header().Get(obs.HeaderRequestID); got == "" {
		t.Fatalf("no server-assigned request ID on the response")
	}

	fams := scrape(t, s)
	for _, name := range []string{
		"tc_queries_total", "tc_query_duration_seconds",
		"tc_query_stage_duration_seconds", "tc_slow_queries_total",
		"tc_http_requests_total", "tc_http_request_duration_seconds",
		"tc_http_requests_in_flight",
		"tc_engine_queries_total", "tc_engine_shards",
		"tc_cache_hits_total", "tc_cache_misses_total", "tc_cache_capacity",
	} {
		if fams[name] == nil {
			t.Fatalf("family %s missing from /metrics", name)
		}
	}
	if v, n := sampleValue(fams["tc_queries_total"], "tc_queries_total",
		map[string]string{"network": "", "result": "miss"}); n != 1 || v != 1 {
		t.Fatalf("tc_queries_total miss = %v (%d samples), want 1", v, n)
	}
	if v, n := sampleValue(fams["tc_queries_total"], "tc_queries_total",
		map[string]string{"network": "", "result": "hit"}); n != 1 || v != 1 {
		t.Fatalf("tc_queries_total hit = %v (%d samples), want 1", v, n)
	}
	if v, _ := sampleValue(fams["tc_engine_queries_total"], "tc_engine_queries_total",
		map[string]string{"network": ""}); v < 1 {
		t.Fatalf("tc_engine_queries_total = %v, want >= 1", v)
	}
	if v, _ := sampleValue(fams["tc_http_requests_total"], "tc_http_requests_total",
		map[string]string{"route": "/api/v1/query", "method": "GET", "code": "200"}); v != 2 {
		t.Fatalf("tc_http_requests_total for /api/v1/query = %v, want 2", v)
	}
	// The private result cache is labeled by its (anonymous) network.
	if _, n := sampleValue(fams["tc_cache_misses_total"], "tc_cache_misses_total",
		map[string]string{"cache": ""}); n != 1 {
		t.Fatalf("tc_cache_misses_total samples = %d, want 1", n)
	}

	rec = get(t, s, "/api/v1/slowlog")
	if rec.Code != http.StatusOK {
		t.Fatalf("slowlog status = %d", rec.Code)
	}
	var sl SlowLogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sl); err != nil {
		t.Fatalf("decode slowlog: %v", err)
	}
	if sl.ThresholdMicros != 0 && sl.ThresholdMicros != time.Nanosecond.Microseconds() {
		t.Fatalf("thresholdMicros = %d", sl.ThresholdMicros)
	}
	if sl.Total < 1 || len(sl.Entries) < 1 {
		t.Fatalf("slow log empty: total=%d entries=%d", sl.Total, len(sl.Entries))
	}
	found := false
	for _, e := range sl.Entries {
		if e.RequestID == "test-req-1" {
			found = true
			if e.Plan == nil {
				t.Fatalf("slow entry has no plan detail: %+v", e)
			}
			if e.DurationMicros < 0 || e.Shards <= 0 {
				t.Fatalf("degenerate slow entry: %+v", e)
			}
		}
	}
	if !found {
		t.Fatalf("no slow entry carries request ID test-req-1: %+v", sl.Entries)
	}
}

// TestFederatedMetricsPerTenant checks the multi-tenant surface: per-network
// query families, exactly one shared-cache sample per cache family, and the
// federation families.
func TestFederatedMetricsPerTenant(t *testing.T) {
	o := obs.NewObserver(obs.ObserverOptions{})
	fed := federation.New(federation.Options{CacheSize: 32, Recorder: o})
	for name, seed := range fedSeeds {
		dir := t.TempDir()
		if _, err := buildFedTree(t, seed).WriteSharded(dir); err != nil {
			t.Fatalf("WriteSharded: %v", err)
		}
		idx, err := tctree.OpenSharded(dir)
		if err != nil {
			t.Fatalf("OpenSharded: %v", err)
		}
		if err := fed.AttachIndex(name, idx, federation.NetworkOptions{}); err != nil {
			t.Fatalf("AttachIndex(%s): %v", name, err)
		}
	}
	s, err := New(nil, Options{Federation: fed, Obs: o})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	for name := range fedSeeds {
		if rec := get(t, s, "/api/v1/"+name+"/query?alpha=0.2"); rec.Code != http.StatusOK {
			t.Fatalf("query %s = %d: %s", name, rec.Code, rec.Body.String())
		}
	}
	if rec := get(t, s, "/api/v1/queryall?alpha=0.3"); rec.Code != http.StatusOK {
		t.Fatalf("queryall = %d: %s", rec.Code, rec.Body.String())
	}

	fams := scrape(t, s)
	for name := range fedSeeds {
		if v, _ := sampleValue(fams["tc_queries_total"], "tc_queries_total",
			map[string]string{"network": name}); v < 2 {
			t.Fatalf("tc_queries_total{network=%q} = %v, want >= 2 (direct + queryall)", name, v)
		}
		if v, _ := sampleValue(fams["tc_engine_shards"], "tc_engine_shards",
			map[string]string{"network": name}); v < 1 {
			t.Fatalf("tc_engine_shards{network=%q} = %v", name, v)
		}
	}
	// The shared cache is emitted once, not once per tenant.
	for _, name := range []string{"tc_cache_hits_total", "tc_cache_misses_total", "tc_cache_capacity"} {
		fam := fams[name]
		if fam == nil {
			t.Fatalf("family %s missing", name)
		}
		if _, n := sampleValue(fam, name, nil); n != 1 {
			t.Fatalf("%s has %d samples, want exactly 1 (shared cache)", name, n)
		}
		if _, n := sampleValue(fam, name, map[string]string{"cache": "shared"}); n != 1 {
			t.Fatalf("%s is not labeled cache=shared", name)
		}
	}
	if v, _ := sampleValue(fams["tc_federation_networks"], "tc_federation_networks", nil); v != float64(len(fedSeeds)) {
		t.Fatalf("tc_federation_networks = %v, want %d", v, len(fedSeeds))
	}
	if v, _ := sampleValue(fams["tc_federation_queryalls_total"], "tc_federation_queryalls_total", nil); v != 1 {
		t.Fatalf("tc_federation_queryalls_total = %v, want 1", v)
	}
}

// TestHealthzPayload checks the structured health answer on both server
// shapes.
func TestHealthzPayload(t *testing.T) {
	s, _ := newObservedServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "ok" || h.GoVersion == "" || h.UptimeSeconds < 0 {
		t.Fatalf("degenerate health %+v", h)
	}
	if len(h.Networks) != 1 || !h.Networks[0].Ready || h.Networks[0].Shards <= 0 {
		t.Fatalf("health networks = %+v", h.Networks)
	}

	fs, _, _ := newFederatedServer(t, federation.Options{CacheSize: 16})
	rec = get(t, fs, "/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("decode federated healthz: %v", err)
	}
	if len(h.Networks) != len(fedSeeds) {
		t.Fatalf("federated health lists %d networks, want %d", len(h.Networks), len(fedSeeds))
	}
	for _, n := range h.Networks {
		if n.Name == "" || !n.Ready || !n.Lazy {
			t.Fatalf("federated network health %+v", n)
		}
	}
}

// TestObservabilityDisabled checks the unobserved server: routes stay
// registered but answer 404, and queries still work.
func TestObservabilityDisabled(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := get(t, s, "/metrics"); rec.Code != http.StatusNotFound {
		t.Fatalf("/metrics on unobserved server = %d, want 404", rec.Code)
	}
	if rec := get(t, s, "/api/v1/slowlog"); rec.Code != http.StatusNotFound {
		t.Fatalf("/api/v1/slowlog on unobserved server = %d, want 404", rec.Code)
	}
	if rec := getWithID(t, s, "/api/v1/query?alpha=0.2", "plain-1"); rec.Code != http.StatusOK {
		t.Fatalf("query = %d", rec.Code)
	}
}
