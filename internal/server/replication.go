package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"themecomm/internal/journal"
	"themecomm/internal/obs"
	"themecomm/internal/replication"
)

// This file is the HTTP surface of replication: GET /api/v1/journal serves
// the primary's delta journal as an NDJSON feed replicas tail, and the
// tc_journal_* / tc_replica_* metric collectors expose the role state to
// Prometheus. The feed is a long poll: the server streams every durable
// record after the client's cursor, emits a "head" frame marking the durable
// head, and — when ?wait is given — blocks for more records before answering
// EOF, so a caught-up replica sits in one cheap request instead of busy
// polling.

// maxJournalWait caps the ?wait long-poll parameter.
const maxJournalWait = 60 * time.Second

// journalWaitSlice bounds one blocking WaitFor so client disconnects are
// noticed between slices.
const journalWaitSlice = time.Second

// JournalRecordFrame is one "record" line of the GET /api/v1/journal feed:
// a journal record with its TCDELTA payload base64-encoded (the standard
// encoding/json rendering of bytes).
type JournalRecordFrame struct {
	Type       string `json:"type"` // "record"
	Seq        uint64 `json:"seq"`
	Epoch      uint64 `json:"epoch"`
	UnixMicros int64  `json:"unixMicros"`
	Network    string `json:"network"`
	Payload    []byte `json:"payload"`
}

// JournalHeadFrame is a "head" line of the GET /api/v1/journal feed: the
// journal's durable head at emission time. It follows the batch of record
// frames (so a tailer knows it is caught up and how far behind it started)
// and closes every long-poll round.
type JournalHeadFrame struct {
	Type string `json:"type"` // "head"
	Seq  uint64 `json:"seq"`
}

// handleJournal serves GET /api/v1/journal?from=<seq>&wait=<seconds>: every
// durable record with sequence number strictly greater than from, then a
// head frame. With wait the response long-polls: after draining the tail the
// server blocks (up to the capped wait) for more records and keeps
// streaming, closing with a final head frame when the wait expires.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.primary == nil {
		writeError(w, r, http.StatusNotFound, "this server does not serve a journal (only a replication primary does)")
		return
	}
	from := uint64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid from %q", v))
			return
		}
		from = parsed
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil || secs < 0 {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid wait %q", v))
			return
		}
		wait = time.Duration(secs * float64(time.Second))
		if wait > maxJournalWait {
			wait = maxJournalWait
		}
	}

	j := s.primary.Journal()
	rd := j.Range(from)
	defer rd.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(v any) {
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	deadline := time.Now().Add(wait)
	next := from + 1
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			writeLine(JournalHeadFrame{Type: "head", Seq: j.DurableSeq()})
			// Long-poll for more in bounded slices, so a vanished client is
			// noticed within a slice rather than held for the full wait.
			waited := false
			for time.Now().Before(deadline) && r.Context().Err() == nil {
				slice := time.Until(deadline)
				if slice > journalWaitSlice {
					slice = journalWaitSlice
				}
				if j.WaitFor(next, slice) {
					waited = true
					break
				}
			}
			if !waited {
				return
			}
			continue
		}
		if err != nil {
			writeLine(streamError(r, err))
			return
		}
		writeLine(JournalRecordFrame{
			Type: "record", Seq: rec.Seq, Epoch: rec.Epoch,
			UnixMicros: rec.UnixMicros, Network: rec.Network, Payload: rec.Payload,
		})
		next = rec.Seq + 1
	}
}

// registerReplicationCollectors exposes the journal and replication-lag
// counters as scrape-time collector families, sampled from the journal and
// the role's Status at render like every other stats surface.
func (s *Server) registerReplicationCollectors() {
	if s.replStatus == nil {
		return
	}
	reg := s.obsv.Registry()

	if s.primary != nil {
		j := s.primary.Journal()
		journalStat := func(name, help, typ string, v func(st journal.Stats) float64) {
			reg.CollectFunc(name, help, typ, nil, func() []obs.Sample {
				return []obs.Sample{{Value: v(j.Stats())}}
			})
		}
		journalStat("tc_journal_appends_total",
			"Records appended to the delta journal.", "counter",
			func(st journal.Stats) float64 { return float64(st.Appends) })
		journalStat("tc_journal_batches_total",
			"Group-commit batches flushed to the delta journal.", "counter",
			func(st journal.Stats) float64 { return float64(st.Batches) })
		journalStat("tc_journal_fsyncs_total",
			"Fsync calls issued by the delta journal.", "counter",
			func(st journal.Stats) float64 { return float64(st.Fsyncs) })
		journalStat("tc_journal_bytes_total",
			"Record bytes written to the delta journal.", "counter",
			func(st journal.Stats) float64 { return float64(st.Bytes) })
		journalStat("tc_journal_segments",
			"Delta journal segment files on disk.", "gauge",
			func(st journal.Stats) float64 { return float64(st.Segments) })
		journalStat("tc_journal_seq",
			"Highest durable journal sequence number.", "gauge",
			func(st journal.Stats) float64 { return float64(st.LastSeq) })
	}

	replGauge := func(name, help string, v func(replication.Status) float64) {
		reg.CollectFunc(name, help, "gauge", nil, func() []obs.Sample {
			return []obs.Sample{{Value: v(s.replStatus())}}
		})
	}
	replGauge("tc_replica_lag_records",
		"Journal records the replica still has to apply to reach the primary's head (0 on a primary).",
		func(st replication.Status) float64 { return float64(st.LagRecords) })
	replGauge("tc_replica_lag_seconds",
		"Age of the replication lag: how long ago the primary appended the newest applied record (0 when caught up).",
		func(st replication.Status) float64 { return st.LagSeconds })

	reg.CollectFunc("tc_replication_applied_seq",
		"Highest journal sequence number applied to the member's serving state.",
		"gauge", []string{"network"}, func() []obs.Sample {
			return s.memberSamples(func(ns replication.NetworkStatus) float64 { return float64(ns.AppliedSeq) })
		})
	reg.CollectFunc("tc_replication_flushed_seq",
		"Highest journal sequence number made durable by a checkpoint.",
		"gauge", []string{"network"}, func() []obs.Sample {
			return s.memberSamples(func(ns replication.NetworkStatus) float64 { return float64(ns.FlushedSeq) })
		})
}

// memberSamples renders one labeled sample per replicated member, in name
// order so scrapes are stable.
func (s *Server) memberSamples(v func(replication.NetworkStatus) float64) []obs.Sample {
	st := s.replStatus()
	names := make([]string, 0, len(st.Networks))
	for name := range st.Networks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]obs.Sample, 0, len(names))
	for _, name := range names {
		out = append(out, obs.Sample{Labels: []string{name}, Value: v(st.Networks[name])})
	}
	return out
}
