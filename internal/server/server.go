// Package server exposes a built TC-Tree over HTTP, turning the index into a
// small query-answering service: the "data warehouse of maximal pattern
// trusses" the paper advocates in Section 6, reachable by any client that can
// issue GET requests. Query execution and index metadata are delegated to
// internal/engine, so the server runs equally over an eager engine (whole
// tree resident) and a lazy one (shards loaded from a sharded index
// directory on first touch); lazy shard-load failures surface as 500s. Only
// the standard library is used.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"themecomm/internal/engine"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// defaultCacheSize is the result-cache bound of the engine the server builds
// when the caller does not supply one.
const defaultCacheSize = 256

// maxBatchQueries bounds one /api/v1/batch request.
const maxBatchQueries = 1024

// Server answers theme-community queries from a TC-Tree. It is safe for
// concurrent use: resident index data is read-only.
type Server struct {
	engine *engine.Engine
	dict   *itemset.Dictionary
	// vertexNames optionally maps vertex identifiers to display names
	// (e.g. author names); it may be nil.
	vertexNames []string
	mux         *http.ServeMux
}

// Options configures a Server.
type Options struct {
	// Dictionary names the items of the indexed network; when nil, items are
	// rendered by their numeric identifiers and pattern queries must use
	// numeric identifiers.
	Dictionary *itemset.Dictionary
	// VertexNames maps vertices to display names; when nil, vertices are
	// rendered by their numeric identifiers.
	VertexNames []string
	// Engine executes the queries. When nil, the server builds one over the
	// tree with default parallelism and a small result cache.
	Engine *engine.Engine
}

// New returns a Server for the given tree. tree may be nil when opts.Engine
// is set — a lazy engine has no resident tree, and every handler reads
// through the engine.
func New(tree *tctree.Tree, opts Options) (*Server, error) {
	eng := opts.Engine
	if eng == nil {
		if tree == nil {
			return nil, fmt.Errorf("server: nil tree and no engine")
		}
		var err error
		eng, err = engine.New(tree, engine.Options{CacheSize: defaultCacheSize})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{engine: eng, dict: opts.Dictionary, vertexNames: opts.VertexNames, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/api/v1/stats", s.handleStats)
	s.mux.HandleFunc("/api/v1/query", s.handleQuery)
	s.mux.HandleFunc("/api/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/api/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/api/v1/enginestats", s.handleEngineStats)
	s.mux.HandleFunc("/api/v1/patterns", s.handlePatterns)
	s.mux.HandleFunc("/api/v1/vertex", s.handleVertex)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StatsResponse is the payload of GET /api/v1/stats.
type StatsResponse struct {
	Nodes    int     `json:"nodes"`
	Depth    int     `json:"depth"`
	MaxAlpha float64 `json:"maxAlpha"`
}

// QueryResponse is the payload of GET /api/v1/query and of each batch answer.
type QueryResponse struct {
	Alpha          float64             `json:"alpha"`
	Pattern        []string            `json:"pattern,omitempty"`
	TopK           int                 `json:"topK,omitempty"`
	RetrievedNodes int                 `json:"retrievedNodes"`
	VisitedNodes   int                 `json:"visitedNodes"`
	QueryMicros    int64               `json:"queryMicros"`
	Communities    []CommunityResponse `json:"communities"`
}

// CommunityResponse describes one theme community in a query answer.
// Cohesion is only set on top-k answers: the largest cohesion threshold at
// which the community survives intact.
type CommunityResponse struct {
	Theme    []string `json:"theme"`
	Vertices []string `json:"vertices"`
	Edges    int      `json:"edges"`
	Cohesion float64  `json:"cohesion,omitempty"`
}

// PatternsResponse is the payload of GET /api/v1/patterns.
type PatternsResponse struct {
	Length   int        `json:"length"`
	Count    int        `json:"count"`
	Patterns [][]string `json:"patterns"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Nodes:    s.engine.NumNodes(),
		Depth:    s.engine.Depth(),
		MaxAlpha: s.engine.MaxAlpha(),
	})
}

// parseQueryParams parses the alpha and pattern query parameters shared by
// /api/v1/query and /api/v1/explain. A missing pattern yields a nil itemset
// ("every item" — the query-by-alpha workload). ok is false when an error
// response has already been written.
func (s *Server) parseQueryParams(w http.ResponseWriter, r *http.Request) (alpha float64, q itemset.Itemset, ok bool) {
	if v := r.URL.Query().Get("alpha"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid alpha %q", v))
			return 0, nil, false
		}
		alpha = parsed
	}
	if raw := r.URL.Query().Get("pattern"); raw != "" {
		parsed, err := s.parsePattern(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return 0, nil, false
		}
		q = parsed
	}
	return alpha, q, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	alpha, q, ok := s.parseQueryParams(w, r)
	if !ok {
		return
	}

	k := 0
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid k %q", v))
			return
		}
		k = parsed
	}

	var patternNames []string
	if q != nil {
		patternNames = s.itemNames(q)
	}

	if k > 0 {
		qr, ranked, err := s.engine.TopKWithResult(q, alpha, k)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp := QueryResponse{
			Alpha:          alpha,
			Pattern:        patternNames,
			TopK:           k,
			RetrievedNodes: qr.RetrievedNodes,
			VisitedNodes:   qr.VisitedNodes,
			QueryMicros:    qr.Duration.Microseconds(),
		}
		for _, rc := range ranked {
			resp.Communities = append(resp.Communities, CommunityResponse{
				Theme:    s.itemNames(rc.Community.Pattern),
				Vertices: s.names(rc.Community.Vertices()),
				Edges:    rc.Edges,
				Cohesion: rc.Cohesion,
			})
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	qr, err := s.engine.Query(q, alpha)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.queryResponse(q, patternNames, alpha, qr))
}

// ExplainResponse is the payload of GET /api/v1/explain: the engine's plan
// and execution report, with the canonical query pattern rendered through
// the dictionary. Task items stay numeric (they are shard identifiers).
type ExplainResponse struct {
	Pattern []string `json:"pattern,omitempty"`
	*engine.ExplainReport
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	alpha, q, ok := s.parseQueryParams(w, r)
	if !ok {
		return
	}
	report, err := s.engine.Explain(q, alpha)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Pattern: s.itemNames(report.Pattern), ExplainReport: report})
}

// queryResponse renders one engine answer.
func (s *Server) queryResponse(q itemset.Itemset, patternNames []string, alpha float64, qr *tctree.QueryResult) QueryResponse {
	resp := QueryResponse{
		Alpha:          alpha,
		Pattern:        patternNames,
		RetrievedNodes: qr.RetrievedNodes,
		VisitedNodes:   qr.VisitedNodes,
		QueryMicros:    qr.Duration.Microseconds(),
	}
	for _, c := range qr.Communities() {
		resp.Communities = append(resp.Communities, CommunityResponse{
			Theme:    s.itemNames(c.Pattern),
			Vertices: s.names(c.Vertices()),
			Edges:    c.Edges.Len(),
		})
	}
	return resp
}

// BatchQuery is one query of a POST /api/v1/batch request. An empty pattern
// means "every item" (query by alpha).
type BatchQuery struct {
	Pattern []string `json:"pattern,omitempty"`
	Alpha   float64  `json:"alpha"`
}

// BatchRequest is the payload of POST /api/v1/batch.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchResponse is the answer to POST /api/v1/batch, one entry per query in
// request order.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid batch request: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries))
		return
	}
	reqs := make([]engine.Request, len(req.Queries))
	names := make([][]string, len(req.Queries))
	for i, bq := range req.Queries {
		if bq.Alpha < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d: negative alpha", i))
			return
		}
		if len(bq.Pattern) > 0 {
			q, err := s.parsePatternList(bq.Pattern)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %v", i, err))
				return
			}
			reqs[i] = engine.Request{Pattern: q, Alpha: bq.Alpha}
			names[i] = s.itemNames(q)
		} else {
			reqs[i] = engine.Request{Alpha: bq.Alpha}
		}
	}
	answers, err := s.engine.QueryBatch(reqs)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := BatchResponse{Results: make([]QueryResponse, len(answers))}
	for i, qr := range answers {
		resp.Results[i] = s.queryResponse(reqs[i].Pattern, names[i], reqs[i].Alpha, qr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEngineStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	length := 1
	if v := r.URL.Query().Get("length"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid length %q", v))
			return
		}
		length = parsed
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid limit %q", v))
			return
		}
		limit = parsed
	}
	patterns, err := s.engine.PatternsAtDepth(length)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := PatternsResponse{Length: length, Count: len(patterns)}
	sort.Slice(patterns, func(i, j int) bool { return itemset.Compare(patterns[i], patterns[j]) < 0 })
	for i, p := range patterns {
		if i >= limit {
			break
		}
		resp.Patterns = append(resp.Patterns, s.itemNames(p))
	}
	writeJSON(w, http.StatusOK, resp)
}

// VertexResponse is the payload of GET /api/v1/vertex: the theme-community
// memberships of one vertex.
type VertexResponse struct {
	Vertex      string              `json:"vertex"`
	Alpha       float64             `json:"alpha"`
	Communities []CommunityResponse `json:"communities"`
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rawID := r.URL.Query().Get("id")
	id, err := strconv.Atoi(rawID)
	if err != nil || id < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid vertex id %q", rawID))
		return
	}
	alpha := 0.0
	if v := r.URL.Query().Get("alpha"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid alpha %q", v))
			return
		}
		alpha = parsed
	}
	communities, err := s.engine.SearchVertex(graph.VertexID(id), nil, alpha)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := VertexResponse{Vertex: s.names([]graph.VertexID{graph.VertexID(id)})[0], Alpha: alpha}
	for _, c := range communities {
		resp.Communities = append(resp.Communities, CommunityResponse{
			Theme:    s.itemNames(c.Pattern),
			Vertices: s.names(c.Vertices()),
			Edges:    c.Edges.Len(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parsePattern resolves a comma-separated list of item names or numeric ids.
func (s *Server) parsePattern(raw string) (itemset.Itemset, error) {
	return s.parsePatternList(strings.Split(raw, ","))
}

// parsePatternList resolves item names or numeric ids given as separate
// fields (a JSON array keeps names containing commas intact, so fields are
// not split any further).
func (s *Server) parsePatternList(fields []string) (itemset.Itemset, error) {
	var items []itemset.Item
	for _, field := range fields {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if id, err := strconv.Atoi(field); err == nil {
			items = append(items, itemset.Item(id))
			continue
		}
		if s.dict == nil {
			return nil, fmt.Errorf("item %q is not numeric and the server has no dictionary", field)
		}
		id, ok := s.dict.Lookup(field)
		if !ok {
			return nil, fmt.Errorf("unknown item %q", field)
		}
		items = append(items, id)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty pattern")
	}
	return itemset.New(items...), nil
}

// itemNames renders an itemset through the dictionary, falling back to
// numeric identifiers.
func (s *Server) itemNames(p itemset.Itemset) []string {
	out := make([]string, 0, p.Len())
	for _, it := range p {
		if s.dict != nil {
			if name, err := s.dict.Name(it); err == nil {
				out = append(out, name)
				continue
			}
		}
		out = append(out, strconv.Itoa(int(it)))
	}
	return out
}

// names renders vertices through the optional display-name table.
func (s *Server) names(vs []graph.VertexID) []string {
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		if int(v) < len(s.vertexNames) {
			out = append(out, s.vertexNames[v])
			continue
		}
		out = append(out, strconv.Itoa(int(v)))
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
