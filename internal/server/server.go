// Package server exposes TC-Tree indexes over HTTP, turning them into a
// query-answering service: the "data warehouse of maximal pattern trusses"
// the paper advocates in Section 6, reachable by any client that can issue
// GET requests. Query execution and index metadata are delegated to
// internal/engine, so the server runs equally over an eager engine (whole
// tree resident) and a lazy one (shards loaded from a sharded index
// directory on first touch); lazy shard-load failures surface as 500s.
//
// A server fronts either one network (Options.Engine, the original
// single-network mode) or a whole federation of them (Options.Federation):
// the single-network routes (/api/v1/query, …) keep answering against the
// default network byte-for-byte as before, while /api/v1/networks lists the
// tenants, /api/v1/{network}/... scopes every route to one tenant, and
// /api/v1/queryall fans one query out across every network, merging top-k
// answers by cohesion. Only the standard library is used.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/engine"
	"themecomm/internal/federation"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/obs"
	"themecomm/internal/replication"
	"themecomm/internal/tctree"
)

// defaultCacheSize is the result-cache bound of the engine the server builds
// when the caller does not supply one.
const defaultCacheSize = 256

// maxBatchQueries bounds one /api/v1/batch request.
const maxBatchQueries = 1024

// tenant is one served network: an engine plus the presentation metadata
// that renders its answers. The single-network server has exactly one;
// federation routes resolve one per request.
type tenant struct {
	// name is the network name; empty for the anonymous single-network
	// tenant.
	name   string
	engine *engine.Engine
	// dict optionally names the items of the indexed network.
	dict *itemset.Dictionary
	// vertexNames optionally maps vertex identifiers to display names
	// (e.g. author names); it may be nil.
	vertexNames []string
	// update applies one network delta to the tenant, serialized per tenant;
	// nil when the server does not hold the tenant's database network, in
	// which case POST .../update is rejected. On a journaled tenant (a
	// replication primary member) the returned seq is the journal sequence
	// number durably assigned to the delta; 0 on the classic synchronous
	// path (index rebuild + swap + optional network write-back).
	update func(*delta.Delta) (res *engine.DeltaResult, seq uint64, err error)
}

// Server answers theme-community queries from one TC-Tree or a federation
// of them. It is safe for concurrent use: resident index data is read-only.
type Server struct {
	// def is the tenant behind the single-network routes; nil when the
	// server is federation-only, in which case the default network resolves
	// per request (DefaultNetwork, or the lexically first attached network).
	def     *tenant
	defName string
	fed     *federation.Federation
	mux     *http.ServeMux
	// obsv is the observability layer (nil disables it); metrics is its HTTP
	// middleware; start anchors the /healthz uptime.
	obsv    *obs.Observer
	metrics *obs.HTTPMetrics
	start   time.Time
	// primary, when non-nil, journals updates to its member networks and
	// serves the replication feed on GET /api/v1/journal. replStatus reports
	// the replication role into /healthz, federationstats and the metrics
	// collectors. readOnly rejects every update with a 403 pointing at
	// primaryURL (replica mode).
	primary    *replication.Primary
	replStatus func() replication.Status
	readOnly   bool
	primaryURL string
}

// Options configures a Server.
type Options struct {
	// Dictionary names the items of the indexed network; when nil, items are
	// rendered by their numeric identifiers and pattern queries must use
	// numeric identifiers.
	Dictionary *itemset.Dictionary
	// VertexNames maps vertices to display names; when nil, vertices are
	// rendered by their numeric identifiers.
	VertexNames []string
	// Engine executes the queries. When nil and a tree is given, the server
	// builds one over the tree with default parallelism and a small result
	// cache.
	Engine *engine.Engine
	// Federation, when non-nil, enables the multi-network routes
	// (/api/v1/networks, /api/v1/{network}/..., /api/v1/queryall,
	// /api/v1/federationstats). When no Engine or tree is given, the
	// single-network routes answer against the federation's default network.
	Federation *federation.Federation
	// DefaultNetwork names the federation network behind the single-network
	// routes; empty means the lexically first attached network. Ignored when
	// an Engine or tree is given (those take the single-network routes).
	DefaultNetwork string
	// Network is the database network the single-network engine's index was
	// built from. Setting it enables POST /api/v1/update (incremental index
	// maintenance); without it update requests are rejected.
	Network *dbnet.Network
	// NetworkPath, when non-empty, is the file the updated network is
	// written back to after every applied delta.
	NetworkPath string
	// Primary, when non-nil, is the replication primary fronting the served
	// federation networks: updates to member networks take the write-ahead
	// fast path (journal append + in-memory apply; the staged shard commit
	// becomes a background checkpoint), and GET /api/v1/journal serves the
	// replication feed replicas tail. The caller owns the primary's
	// lifecycle: Recover before serving, Start/Stop around it.
	Primary *replication.Primary
	// ReadOnly marks the server a read-only replica: every update request is
	// answered 403, with a Location header pointing at the primary when
	// PrimaryURL is set.
	ReadOnly bool
	// PrimaryURL is the primary's base URL, advertised to rejected writers.
	PrimaryURL string
	// ReplicationStatus, when non-nil, feeds the replication role state into
	// /healthz, /api/v1/federationstats and the tc_journal_*/tc_replica_*
	// metrics; use Primary.Status or Replica.Status. Defaults to
	// Primary.Status when Primary is set.
	ReplicationStatus func() replication.Status
	// Obs enables the observability layer: request-ID propagation, HTTP
	// metrics and access logging on every route, GET /metrics over the
	// observer's registry (plus engine/cache/federation collectors), and
	// GET /api/v1/slowlog over its slow-query ring. Build the engine (or
	// federation) with the same observer as its Recorder so query latency
	// histograms land in the same registry. Nil disables all of it.
	Obs *obs.Observer
}

// New returns a Server for the given tree. tree may be nil when opts.Engine
// is set — a lazy engine has no resident tree, and every handler reads
// through the engine — or when opts.Federation serves the default network.
func New(tree *tctree.Tree, opts Options) (*Server, error) {
	eng := opts.Engine
	if eng == nil && tree != nil {
		var err error
		eng, err = engine.New(tree, engine.Options{CacheSize: defaultCacheSize})
		if err != nil {
			return nil, err
		}
	}
	if eng == nil && opts.Federation == nil {
		return nil, fmt.Errorf("server: nil tree and no engine or federation")
	}
	s := &Server{defName: opts.DefaultNetwork, fed: opts.Federation, mux: http.NewServeMux(),
		obsv: opts.Obs, start: time.Now(),
		primary: opts.Primary, replStatus: opts.ReplicationStatus,
		readOnly: opts.ReadOnly, primaryURL: strings.TrimRight(opts.PrimaryURL, "/")}
	if s.replStatus == nil && s.primary != nil {
		s.replStatus = s.primary.Status
	}
	if s.obsv != nil {
		s.metrics = obs.NewHTTPMetrics(s.obsv.Registry(), s.obsv.Logger())
		s.registerCollectors()
		s.registerReplicationCollectors()
	}
	if eng != nil {
		s.def = &tenant{engine: eng, dict: opts.Dictionary, vertexNames: opts.VertexNames}
		if opts.Network != nil {
			// Reuse the tenant update path (per-tenant serialization,
			// engine.ApplyDelta, atomic network write-back) via a standalone
			// federation network.
			standalone := federation.Standalone("", eng, federation.NetworkOptions{
				Dictionary:  opts.Dictionary,
				VertexNames: opts.VertexNames,
				Network:     opts.Network,
				NetworkPath: opts.NetworkPath,
			})
			s.def.update = classicUpdate(standalone)
		}
	}
	// Unmatched paths answer a JSON 404 instead of the mux's plain-text
	// default, so every error the API returns is machine-readable. Routes are
	// registered through handle, which layers the HTTP observability
	// middleware over every handler when an observer is configured.
	s.handle("/", s.handleNotFound)
	s.handle("/healthz", s.handleHealth)
	s.handle("/metrics", s.handleMetrics)
	s.handle("/api/v1/slowlog", s.handleSlowLog)
	s.handle("/api/v1/stats", s.forDefault(s.serveStats))
	s.handle("/api/v1/query", s.forDefault(s.serveQuery))
	s.handle("/api/v1/explain", s.forDefault(s.serveExplain))
	s.handle("/api/v1/batch", s.forDefault(s.serveBatch))
	s.handle("/api/v1/enginestats", s.forDefault(s.serveEngineStats))
	s.handle("/api/v1/patterns", s.forDefault(s.servePatterns))
	s.handle("/api/v1/vertex", s.forDefault(s.serveVertex))
	s.handle("/api/v1/update", s.forDefault(s.serveUpdate))
	s.handle("/api/v1/journal", s.handleJournal)
	s.registerFederationRoutes()
	return s, nil
}

// handleNotFound is the catch-all for paths no route matches.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, r, http.StatusNotFound, fmt.Sprintf("no such route %s", r.URL.Path))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// defaultTenant resolves the network behind the single-network routes: the
// configured engine when there is one, otherwise the federation's default
// network (DefaultNetwork, or the lexically first attached one). Resolution
// is per request, so networks attached after start become servable. On
// failure the second return value says why — an empty federation and a
// default name that does not resolve are different operator errors.
func (s *Server) defaultTenant() (*tenant, string) {
	if s.def != nil {
		return s.def, ""
	}
	if s.fed == nil {
		return nil, "no default network: this server has no engine and no federation"
	}
	name := s.defName
	if name == "" {
		names := s.fed.Names()
		if len(names) == 0 {
			return nil, "no default network: the federation has no attached networks"
		}
		name = names[0]
	}
	n, ok := s.fed.Network(name)
	if !ok {
		return nil, fmt.Sprintf("no default network: %q is not attached", name)
	}
	return s.tenantOf(n), ""
}

// tenantOf adapts a federation network to the handler-facing tenant. A
// member of the replication primary updates through the journaled fast path
// (Primary.Apply); any other network with a database network attached keeps
// the classic synchronous path.
func (s *Server) tenantOf(n *federation.Network) *tenant {
	t := &tenant{name: n.Name(), engine: n.Engine(), dict: n.Dictionary(), vertexNames: n.VertexNames()}
	if name := n.Name(); s.primary != nil && s.primary.Member(name) {
		t.update = func(d *delta.Delta) (*engine.DeltaResult, uint64, error) {
			ar, err := s.primary.Apply(name, d)
			if err != nil {
				return nil, 0, err
			}
			return ar.Result, ar.Seq, nil
		}
	} else if n.DatabaseNetwork() != nil {
		t.update = classicUpdate(n)
	}
	return t
}

// classicUpdate adapts a federation network's synchronous ApplyDelta to the
// tenant update signature (no journal, so seq is always 0).
func classicUpdate(n *federation.Network) func(*delta.Delta) (*engine.DeltaResult, uint64, error) {
	return func(d *delta.Delta) (*engine.DeltaResult, uint64, error) {
		res, err := n.ApplyDelta(d)
		return res, 0, err
	}
}

// forDefault adapts a tenant-scoped handler to the single-network routes.
func (s *Server) forDefault(h func(*tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, why := s.defaultTenant()
		if t == nil {
			writeError(w, r, http.StatusNotFound, why)
			return
		}
		h(t, w, r)
	}
}

// StatsResponse is the payload of GET /api/v1/stats.
type StatsResponse struct {
	Nodes    int     `json:"nodes"`
	Depth    int     `json:"depth"`
	MaxAlpha float64 `json:"maxAlpha"`
}

// QueryResponse is the payload of GET /api/v1/query and of each batch answer.
type QueryResponse struct {
	Alpha   float64  `json:"alpha"`
	Pattern []string `json:"pattern,omitempty"`
	// Contains marks a containment answer (?contains=true): the communities
	// are those of every indexed pattern that is a superset of the query.
	Contains       bool                `json:"contains,omitempty"`
	TopK           int                 `json:"topK,omitempty"`
	RetrievedNodes int                 `json:"retrievedNodes"`
	VisitedNodes   int                 `json:"visitedNodes"`
	QueryMicros    int64               `json:"queryMicros"`
	Communities    []CommunityResponse `json:"communities"`
	// NextCursor resumes a paginated answer (?limit=N) where this page
	// stopped; present only when more communities remain.
	NextCursor string `json:"nextCursor,omitempty"`
}

// CommunityResponse describes one theme community in a query answer.
// Cohesion is only set on top-k answers: the largest cohesion threshold at
// which the community survives intact.
type CommunityResponse struct {
	Theme    []string `json:"theme"`
	Vertices []string `json:"vertices"`
	Edges    int      `json:"edges"`
	Cohesion float64  `json:"cohesion,omitempty"`
}

// PatternsResponse is the payload of GET /api/v1/patterns.
type PatternsResponse struct {
	Length   int        `json:"length"`
	Count    int        `json:"count"`
	Patterns [][]string `json:"patterns"`
}

// errorResponse is the JSON error envelope every route answers failures
// with: the message, the HTTP status repeated in the body (so a client that
// only kept the body can still branch on it), and the request ID when the
// observability layer is enabled — quote it when reporting a failure and the
// operator can find the request in the access log and slow-query ring.
type errorResponse struct {
	Error     string `json:"error"`
	Status    int    `json:"status"`
	RequestID string `json:"requestId,omitempty"`
}

func (s *Server) serveStats(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Nodes:    t.engine.NumNodes(),
		Depth:    t.engine.Depth(),
		MaxAlpha: t.engine.MaxAlpha(),
	})
}

func (s *Server) serveQuery(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	req, rerr := parseQueryRequest(t, r, capTopK|capContains|capStream|capCursor)
	if rerr != nil {
		rerr.write(w, r)
		return
	}
	// Streaming and pagination parameters divert to the pull-based executor;
	// without them the materializing path below answers byte-for-byte as
	// before. Streams execute sub-pattern semantics only.
	if req.paged() {
		s.serveQueryStream(t, w, r, req)
		return
	}
	alpha, q, k := req.Alpha, req.Pattern, req.K

	var patternNames []string
	if q != nil {
		patternNames = t.itemNames(q)
	}

	if k > 0 {
		qr, ranked, err := t.engine.TopKWithResultContext(r.Context(), q, alpha, k)
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, err.Error())
			return
		}
		resp := QueryResponse{
			Alpha:          alpha,
			Pattern:        patternNames,
			TopK:           k,
			RetrievedNodes: qr.RetrievedNodes,
			VisitedNodes:   qr.VisitedNodes,
			QueryMicros:    qr.Duration.Microseconds(),
		}
		for _, rc := range ranked {
			resp.Communities = append(resp.Communities, t.rankedResponse(rc))
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	var qr *tctree.QueryResult
	var err error
	if req.Contains {
		qr, err = t.engine.QueryContainingContext(r.Context(), q, alpha)
	} else {
		qr, err = t.engine.QueryContext(r.Context(), q, alpha)
	}
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	resp := t.queryResponse(q, patternNames, alpha, qr)
	resp.Contains = req.Contains
	writeJSON(w, http.StatusOK, resp)
}

// rankedResponse renders one top-k community.
func (t *tenant) rankedResponse(rc engine.RankedCommunity) CommunityResponse {
	return CommunityResponse{
		Theme:    t.itemNames(rc.Community.Pattern),
		Vertices: t.names(rc.Community.Vertices()),
		Edges:    rc.Edges,
		Cohesion: rc.Cohesion,
	}
}

// ExplainResponse is the payload of GET /api/v1/explain: the engine's plan
// and execution report, with the canonical query pattern rendered through
// the dictionary. Task items stay numeric (they are shard identifiers).
type ExplainResponse struct {
	// Network is the serving network; empty on the single-network routes.
	Network string   `json:"network,omitempty"`
	Pattern []string `json:"pattern,omitempty"`
	*engine.ExplainReport
}

func (s *Server) serveExplain(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	req, rerr := parseQueryRequest(t, r, capContains)
	if rerr != nil {
		rerr.write(w, r)
		return
	}
	var report *engine.ExplainReport
	var err error
	if req.Contains {
		report, err = t.engine.ExplainContaining(req.Pattern, req.Alpha)
	} else {
		report, err = t.engine.Explain(req.Pattern, req.Alpha)
	}
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Network: t.name, Pattern: t.itemNames(report.Pattern), ExplainReport: report})
}

// queryResponse renders one engine answer.
func (t *tenant) queryResponse(q itemset.Itemset, patternNames []string, alpha float64, qr *tctree.QueryResult) QueryResponse {
	resp := QueryResponse{
		Alpha:          alpha,
		Pattern:        patternNames,
		RetrievedNodes: qr.RetrievedNodes,
		VisitedNodes:   qr.VisitedNodes,
		QueryMicros:    qr.Duration.Microseconds(),
	}
	for _, c := range qr.Communities() {
		resp.Communities = append(resp.Communities, CommunityResponse{
			Theme:    t.itemNames(c.Pattern),
			Vertices: t.names(c.Vertices()),
			Edges:    c.Edges.Len(),
		})
	}
	return resp
}

// BatchQuery is one query of a POST /api/v1/batch request. An empty pattern
// means "every item" (query by alpha).
type BatchQuery struct {
	Pattern []string `json:"pattern,omitempty"`
	Alpha   float64  `json:"alpha"`
}

// BatchRequest is the payload of POST /api/v1/batch.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchResponse is the answer to POST /api/v1/batch, one entry per query in
// request order.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
}

func (s *Server) serveBatch(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid batch request: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, r, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries))
		return
	}
	reqs := make([]engine.Request, len(req.Queries))
	names := make([][]string, len(req.Queries))
	for i, bq := range req.Queries {
		if bq.Alpha < 0 {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("query %d: negative alpha", i))
			return
		}
		if len(bq.Pattern) > 0 {
			q, err := t.parsePatternList(bq.Pattern)
			if err != nil {
				writeError(w, r, http.StatusBadRequest, fmt.Sprintf("query %d: %v", i, err))
				return
			}
			reqs[i] = engine.Request{Pattern: q, Alpha: bq.Alpha}
			names[i] = t.itemNames(q)
		} else {
			reqs[i] = engine.Request{Alpha: bq.Alpha}
		}
	}
	answers, err := t.engine.QueryBatchContext(r.Context(), reqs)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	resp := BatchResponse{Results: make([]QueryResponse, len(answers))}
	for i, qr := range answers {
		resp.Results[i] = t.queryResponse(reqs[i].Pattern, names[i], reqs[i].Alpha, qr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) serveEngineStats(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, t.engine.Stats())
}

func (s *Server) servePatterns(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	length := 1
	if v := r.URL.Query().Get("length"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid length %q", v))
			return
		}
		length = parsed
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid limit %q", v))
			return
		}
		limit = parsed
	}
	patterns, err := t.engine.PatternsAtDepth(length)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	resp := PatternsResponse{Length: length, Count: len(patterns)}
	sort.Slice(patterns, func(i, j int) bool { return itemset.Compare(patterns[i], patterns[j]) < 0 })
	for i, p := range patterns {
		if i >= limit {
			break
		}
		resp.Patterns = append(resp.Patterns, t.itemNames(p))
	}
	writeJSON(w, http.StatusOK, resp)
}

// VertexResponse is the payload of GET /api/v1/vertex: the theme-community
// memberships of one vertex.
type VertexResponse struct {
	Vertex      string              `json:"vertex"`
	Alpha       float64             `json:"alpha"`
	Communities []CommunityResponse `json:"communities"`
}

func (s *Server) serveVertex(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rawID := r.URL.Query().Get("id")
	id, err := strconv.Atoi(rawID)
	if err != nil || id < 0 {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid vertex id %q", rawID))
		return
	}
	req, rerr := parseQueryRequest(t, r, 0)
	if rerr != nil {
		rerr.write(w, r)
		return
	}
	communities, err := t.engine.SearchVertex(graph.VertexID(id), req.Pattern, req.Alpha)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	resp := VertexResponse{Vertex: t.names([]graph.VertexID{graph.VertexID(id)})[0], Alpha: req.Alpha}
	for _, c := range communities {
		resp.Communities = append(resp.Communities, CommunityResponse{
			Theme:    t.itemNames(c.Pattern),
			Vertices: t.names(c.Vertices()),
			Edges:    c.Edges.Len(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parsePattern resolves a comma-separated list of item names or numeric ids.
func (t *tenant) parsePattern(raw string) (itemset.Itemset, error) {
	return t.parsePatternList(strings.Split(raw, ","))
}

// parsePatternList resolves item names or numeric ids given as separate
// fields (a JSON array keeps names containing commas intact, so fields are
// not split any further).
func (t *tenant) parsePatternList(fields []string) (itemset.Itemset, error) {
	var items []itemset.Item
	for _, field := range fields {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if id, err := strconv.Atoi(field); err == nil {
			items = append(items, itemset.Item(id))
			continue
		}
		if t.dict == nil {
			return nil, fmt.Errorf("item %q is not numeric and the server has no dictionary", field)
		}
		id, ok := t.dict.Lookup(field)
		if !ok {
			return nil, fmt.Errorf("unknown item %q", field)
		}
		items = append(items, id)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty pattern")
	}
	return itemset.New(items...), nil
}

// itemNames renders an itemset through the dictionary, falling back to
// numeric identifiers.
func (t *tenant) itemNames(p itemset.Itemset) []string {
	out := make([]string, 0, p.Len())
	for _, it := range p {
		if t.dict != nil {
			if name, err := t.dict.Name(it); err == nil {
				out = append(out, name)
				continue
			}
		}
		out = append(out, strconv.Itoa(int(it)))
	}
	return out
}

// names renders vertices through the optional display-name table.
func (t *tenant) names(vs []graph.VertexID) []string {
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		if int(v) < len(t.vertexNames) {
			out = append(out, t.vertexNames[v])
			continue
		}
		out = append(out, strconv.Itoa(int(v)))
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}

// writeError is the single choke point every error answer goes through; the
// request supplies the ID the envelope echoes back.
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	var id string
	if r != nil {
		id = obs.RequestIDFrom(r.Context())
	}
	writeJSON(w, status, errorResponse{Error: msg, Status: status, RequestID: id})
}
