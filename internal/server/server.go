// Package server exposes a built TC-Tree over HTTP, turning the index into a
// small query-answering service: the "data warehouse of maximal pattern
// trusses" the paper advocates in Section 6, reachable by any client that can
// issue GET requests. Only the standard library is used.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// Server answers theme-community queries from a TC-Tree. It is safe for
// concurrent use: the underlying tree is read-only after construction.
type Server struct {
	tree *tctree.Tree
	dict *itemset.Dictionary
	// vertexNames optionally maps vertex identifiers to display names
	// (e.g. author names); it may be nil.
	vertexNames []string
	mux         *http.ServeMux
}

// Options configures a Server.
type Options struct {
	// Dictionary names the items of the indexed network; when nil, items are
	// rendered by their numeric identifiers and pattern queries must use
	// numeric identifiers.
	Dictionary *itemset.Dictionary
	// VertexNames maps vertices to display names; when nil, vertices are
	// rendered by their numeric identifiers.
	VertexNames []string
}

// New returns a Server for the given tree.
func New(tree *tctree.Tree, opts Options) (*Server, error) {
	if tree == nil {
		return nil, fmt.Errorf("server: nil tree")
	}
	s := &Server{tree: tree, dict: opts.Dictionary, vertexNames: opts.VertexNames, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/api/v1/stats", s.handleStats)
	s.mux.HandleFunc("/api/v1/query", s.handleQuery)
	s.mux.HandleFunc("/api/v1/patterns", s.handlePatterns)
	s.mux.HandleFunc("/api/v1/vertex", s.handleVertex)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StatsResponse is the payload of GET /api/v1/stats.
type StatsResponse struct {
	Nodes    int     `json:"nodes"`
	Depth    int     `json:"depth"`
	MaxAlpha float64 `json:"maxAlpha"`
}

// QueryResponse is the payload of GET /api/v1/query.
type QueryResponse struct {
	Alpha          float64             `json:"alpha"`
	Pattern        []string            `json:"pattern,omitempty"`
	RetrievedNodes int                 `json:"retrievedNodes"`
	VisitedNodes   int                 `json:"visitedNodes"`
	QueryMicros    int64               `json:"queryMicros"`
	Communities    []CommunityResponse `json:"communities"`
}

// CommunityResponse describes one theme community in a query answer.
type CommunityResponse struct {
	Theme    []string `json:"theme"`
	Vertices []string `json:"vertices"`
	Edges    int      `json:"edges"`
}

// PatternsResponse is the payload of GET /api/v1/patterns.
type PatternsResponse struct {
	Length   int        `json:"length"`
	Count    int        `json:"count"`
	Patterns [][]string `json:"patterns"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Nodes:    s.tree.NumNodes(),
		Depth:    s.tree.Depth(),
		MaxAlpha: s.tree.MaxAlpha(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	alpha := 0.0
	if v := r.URL.Query().Get("alpha"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid alpha %q", v))
			return
		}
		alpha = parsed
	}

	var qr *tctree.QueryResult
	var patternNames []string
	if raw := r.URL.Query().Get("pattern"); raw != "" {
		q, err := s.parsePattern(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		patternNames = s.itemNames(q)
		qr = s.tree.Query(q, alpha)
	} else {
		qr = s.tree.QueryByAlpha(alpha)
	}

	resp := QueryResponse{
		Alpha:          alpha,
		Pattern:        patternNames,
		RetrievedNodes: qr.RetrievedNodes,
		VisitedNodes:   qr.VisitedNodes,
		QueryMicros:    qr.Duration.Microseconds(),
	}
	for _, c := range qr.Communities() {
		resp.Communities = append(resp.Communities, CommunityResponse{
			Theme:    s.itemNames(c.Pattern),
			Vertices: s.names(c.Vertices()),
			Edges:    c.Edges.Len(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	length := 1
	if v := r.URL.Query().Get("length"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid length %q", v))
			return
		}
		length = parsed
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid limit %q", v))
			return
		}
		limit = parsed
	}
	patterns := s.tree.PatternsAtDepth(length)
	resp := PatternsResponse{Length: length, Count: len(patterns)}
	sort.Slice(patterns, func(i, j int) bool { return itemset.Compare(patterns[i], patterns[j]) < 0 })
	for i, p := range patterns {
		if i >= limit {
			break
		}
		resp.Patterns = append(resp.Patterns, s.itemNames(p))
	}
	writeJSON(w, http.StatusOK, resp)
}

// VertexResponse is the payload of GET /api/v1/vertex: the theme-community
// memberships of one vertex.
type VertexResponse struct {
	Vertex      string              `json:"vertex"`
	Alpha       float64             `json:"alpha"`
	Communities []CommunityResponse `json:"communities"`
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rawID := r.URL.Query().Get("id")
	id, err := strconv.Atoi(rawID)
	if err != nil || id < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid vertex id %q", rawID))
		return
	}
	alpha := 0.0
	if v := r.URL.Query().Get("alpha"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid alpha %q", v))
			return
		}
		alpha = parsed
	}
	resp := VertexResponse{Vertex: s.names([]graph.VertexID{graph.VertexID(id)})[0], Alpha: alpha}
	for _, c := range s.tree.SearchVertex(graph.VertexID(id), nil, alpha) {
		resp.Communities = append(resp.Communities, CommunityResponse{
			Theme:    s.itemNames(c.Pattern),
			Vertices: s.names(c.Vertices()),
			Edges:    c.Edges.Len(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parsePattern resolves a comma-separated list of item names or numeric ids.
func (s *Server) parsePattern(raw string) (itemset.Itemset, error) {
	var items []itemset.Item
	for _, field := range strings.Split(raw, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if id, err := strconv.Atoi(field); err == nil {
			items = append(items, itemset.Item(id))
			continue
		}
		if s.dict == nil {
			return nil, fmt.Errorf("item %q is not numeric and the server has no dictionary", field)
		}
		id, ok := s.dict.Lookup(field)
		if !ok {
			return nil, fmt.Errorf("unknown item %q", field)
		}
		items = append(items, id)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty pattern")
	}
	return itemset.New(items...), nil
}

// itemNames renders an itemset through the dictionary, falling back to
// numeric identifiers.
func (s *Server) itemNames(p itemset.Itemset) []string {
	out := make([]string, 0, p.Len())
	for _, it := range p {
		if s.dict != nil {
			if name, err := s.dict.Name(it); err == nil {
				out = append(out, name)
				continue
			}
		}
		out = append(out, strconv.Itoa(int(it)))
	}
	return out
}

// names renders vertices through the optional display-name table.
func (s *Server) names(vs []graph.VertexID) []string {
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		if int(v) < len(s.vertexNames) {
			out = append(out, s.vertexNames[v])
			continue
		}
		out = append(out, strconv.Itoa(int(v)))
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
