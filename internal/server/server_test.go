package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/engine"
	"themecomm/internal/gen"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// newTestServer builds a server over the co-author analogue so that both item
// names and vertex names are exercised.
func newTestServer(t *testing.T) (*Server, gen.Dataset) {
	t.Helper()
	d, err := gen.AMiner(0.08)
	if err != nil {
		t.Fatalf("AMiner: %v", err)
	}
	tree := tctree.Build(d.Network, tctree.BuildOptions{MaxDepth: 3})
	s, err := New(tree, Options{Dictionary: d.Dictionary, VertexNames: d.AuthorNames})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, d
}

func get(t *testing.T, s *Server, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestNewRejectsNilTree(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatalf("nil tree should be rejected")
	}
}

func TestHealthAndStats(t *testing.T) {
	s, _ := newTestServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	rec = get(t, s, "/api/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if stats.Nodes <= 0 || stats.Depth <= 0 || stats.MaxAlpha <= 0 {
		t.Fatalf("degenerate stats %+v", stats)
	}
}

func TestQueryByAlphaEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := get(t, s, "/api/v1/query?alpha=0.2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.RetrievedNodes <= 0 || len(resp.Communities) == 0 {
		t.Fatalf("query returned nothing: %+v", resp)
	}
	for _, c := range resp.Communities {
		if len(c.Theme) == 0 || len(c.Vertices) < 3 || c.Edges < 3 {
			t.Fatalf("degenerate community %+v", c)
		}
	}
}

func TestQueryByPatternEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := get(t, s, "/api/v1/query?pattern=data+mining,sequential+pattern&alpha=0.1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Pattern) != 2 {
		t.Fatalf("echoed pattern = %v", resp.Pattern)
	}
	// Every returned theme must be a subset of the query pattern.
	allowed := map[string]bool{"data mining": true, "sequential pattern": true}
	for _, c := range resp.Communities {
		for _, kw := range c.Theme {
			if !allowed[kw] {
				t.Fatalf("theme %v is not a sub-pattern of the query", c.Theme)
			}
		}
		// Vertex names resolve to author names.
		if len(c.Vertices) > 0 && c.Vertices[0][:6] != "Author" {
			t.Fatalf("vertex names not resolved: %v", c.Vertices[:1])
		}
	}
}

func TestQueryNumericPatternWithoutDictionary(t *testing.T) {
	nw := dbnet.PaperExample()
	tree := tctree.Build(nw, tctree.BuildOptions{})
	s, err := New(tree, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec := get(t, s, "/api/v1/query?pattern=1&alpha=0.1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.RetrievedNodes != 1 || len(resp.Communities) != 2 {
		t.Fatalf("paper example query answer wrong: %+v", resp)
	}
	// Named pattern without a dictionary is a client error.
	rec = get(t, s, "/api/v1/query?pattern=beer")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("named pattern without dictionary should be a 400, got %d", rec.Code)
	}
}

func TestPatternsEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := get(t, s, "/api/v1/patterns?length=2&limit=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp PatternsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Length != 2 || resp.Count <= 0 {
		t.Fatalf("patterns response %+v", resp)
	}
	if len(resp.Patterns) > 5 {
		t.Fatalf("limit not honoured: %d", len(resp.Patterns))
	}
	for _, p := range resp.Patterns {
		if len(p) != 2 {
			t.Fatalf("pattern of wrong length: %v", p)
		}
	}
}

func TestVertexEndpoint(t *testing.T) {
	s, d := newTestServer(t)
	// Find a vertex that belongs to at least one community at α=0.2.
	qrec := get(t, s, "/api/v1/query?alpha=0.2")
	var q QueryResponse
	if err := json.Unmarshal(qrec.Body.Bytes(), &q); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(q.Communities) == 0 {
		t.Skipf("no communities at this α")
	}
	member := q.Communities[0].Vertices[0]
	// Resolve the author name back to the vertex id.
	id := -1
	for i, name := range d.AuthorNames {
		if name == member {
			id = i
			break
		}
	}
	if id < 0 {
		t.Fatalf("could not resolve author %q", member)
	}
	rec := get(t, s, "/api/v1/vertex?id="+strconv.Itoa(id)+"&alpha=0.2")
	if rec.Code != http.StatusOK {
		t.Fatalf("vertex status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp VertexResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Vertex != member {
		t.Fatalf("vertex name = %q, want %q", resp.Vertex, member)
	}
	if len(resp.Communities) == 0 {
		t.Fatalf("member of a community should have a non-empty profile")
	}
	// Bad requests.
	for _, url := range []string{"/api/v1/vertex", "/api/v1/vertex?id=x", "/api/v1/vertex?id=-1", "/api/v1/vertex?id=0&alpha=bad"} {
		if rec := get(t, s, url); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", url, rec.Code)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []struct {
		url  string
		want int
	}{
		{"/api/v1/query?alpha=-1", http.StatusBadRequest},
		{"/api/v1/query?alpha=abc", http.StatusBadRequest},
		{"/api/v1/query?pattern=no-such-keyword-anywhere", http.StatusBadRequest},
		{"/api/v1/query?pattern=,", http.StatusBadRequest},
		{"/api/v1/patterns?length=0", http.StatusBadRequest},
		{"/api/v1/patterns?length=x", http.StatusBadRequest},
		{"/api/v1/patterns?limit=0", http.StatusBadRequest},
		{"/no/such/route", http.StatusNotFound},
	}
	for _, c := range cases {
		if rec := get(t, s, c.url); rec.Code != c.want {
			t.Errorf("GET %s = %d, want %d", c.url, rec.Code, c.want)
		}
	}
	// Non-GET methods are rejected.
	for _, path := range []string{"/healthz", "/api/v1/stats", "/api/v1/query", "/api/v1/patterns"} {
		req := httptest.NewRequest(http.MethodPost, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, rec.Code)
		}
	}
}

func TestItemNamesFallback(t *testing.T) {
	nw := dbnet.PaperExample()
	tree := tctree.Build(nw, tctree.BuildOptions{})
	// A dictionary that does not cover the network's items falls back to ids.
	dict := itemset.NewDictionary()
	s, err := New(tree, Options{Dictionary: dict})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec := get(t, s, "/api/v1/patterns?length=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp PatternsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Count == 0 {
		t.Fatalf("no patterns returned")
	}
}

func post(t *testing.T, s *Server, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestQueryMatchesDirectTree checks that routing /api/v1/query through the
// engine returns the same answer the tree computes directly.
func TestQueryMatchesDirectTree(t *testing.T) {
	nw := dbnet.PaperExample()
	tree := tctree.Build(nw, tctree.BuildOptions{})
	s, err := New(tree, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := tree.QueryByAlpha(0.1)
	rec := get(t, s, "/api/v1/query?alpha=0.1")
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.RetrievedNodes != want.RetrievedNodes || resp.VisitedNodes != want.VisitedNodes {
		t.Fatalf("engine answer (%d/%d nodes) differs from tree (%d/%d)",
			resp.RetrievedNodes, resp.VisitedNodes, want.RetrievedNodes, want.VisitedNodes)
	}
	if len(resp.Communities) != len(want.Communities()) {
		t.Fatalf("engine found %d communities, tree %d", len(resp.Communities), len(want.Communities()))
	}
}

func TestTopKQueryEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := get(t, s, "/api/v1/query?alpha=0.1&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.TopK != 3 {
		t.Fatalf("topK = %d, want 3", resp.TopK)
	}
	if len(resp.Communities) == 0 || len(resp.Communities) > 3 {
		t.Fatalf("top-k answer has %d communities", len(resp.Communities))
	}
	prev := resp.Communities[0].Cohesion
	for i, c := range resp.Communities {
		if c.Cohesion <= 0.1 {
			t.Fatalf("community %d has cohesion %g ≤ α_q", i, c.Cohesion)
		}
		if c.Cohesion > prev {
			t.Fatalf("communities not ranked by descending cohesion at %d", i)
		}
		prev = c.Cohesion
	}
	if rec := get(t, s, "/api/v1/query?k=0"); rec.Code != http.StatusBadRequest {
		t.Fatalf("k=0 should be rejected, got %d", rec.Code)
	}
	if rec := get(t, s, "/api/v1/query?k=x"); rec.Code != http.StatusBadRequest {
		t.Fatalf("k=x should be rejected, got %d", rec.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	body := `{"queries":[
		{"alpha":0.2},
		{"pattern":["data mining","sequential pattern"],"alpha":0.1},
		{"alpha":0.2}
	]}`
	rec := post(t, s, "/api/v1/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	// The batch answers must match the single-query endpoint.
	single := get(t, s, "/api/v1/query?alpha=0.2")
	var want QueryResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, i := range []int{0, 2} {
		got := resp.Results[i]
		if got.RetrievedNodes != want.RetrievedNodes || len(got.Communities) != len(want.Communities) {
			t.Fatalf("batch result %d (%d nodes, %d communities) differs from single query (%d, %d)",
				i, got.RetrievedNodes, len(got.Communities), want.RetrievedNodes, len(want.Communities))
		}
	}
	if len(resp.Results[1].Pattern) != 2 {
		t.Fatalf("pattern not echoed: %+v", resp.Results[1].Pattern)
	}

	// Bad requests.
	for _, body := range []string{"", "{}", `{"queries":[]}`, "not json", `{"queries":[{"alpha":-1}]}`, `{"queries":[{"pattern":["no-such-keyword"],"alpha":0}]}`} {
		if rec := post(t, s, "/api/v1/batch", body); rec.Code != http.StatusBadRequest {
			t.Errorf("batch %q = %d, want 400", body, rec.Code)
		}
	}
	if rec := get(t, s, "/api/v1/batch"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/v1/batch = %d, want 405", rec.Code)
	}
}

func TestEngineStatsEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	get(t, s, "/api/v1/query?alpha=0.2") // miss
	get(t, s, "/api/v1/query?alpha=0.2") // hit
	rec := get(t, s, "/api/v1/enginestats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var stats engine.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if stats.Shards == 0 || stats.Workers == 0 {
		t.Fatalf("degenerate engine stats %+v", stats)
	}
	if stats.Queries < 2 || !stats.Cache.Enabled || stats.Cache.Hits < 1 {
		t.Fatalf("engine stats did not record the cached repeat: %+v", stats)
	}
	if rec := post(t, s, "/api/v1/enginestats", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/v1/enginestats = %d, want 405", rec.Code)
	}
}

// TestExplainEndpoint checks /api/v1/explain: per-shard decisions for a
// named single-item pattern (one shard relevant, the rest skip-absent), the
// execution summary, and the query-by-alpha form.
func TestExplainEndpoint(t *testing.T) {
	s, d := newTestServer(t)
	name, err := d.Dictionary.Name(0)
	if err != nil {
		t.Fatalf("Name(0): %v", err)
	}
	rec := get(t, s, "/api/v1/explain?pattern="+strings.ReplaceAll(name, " ", "+")+"&alpha=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ExplainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Pattern) != 1 || resp.Pattern[0] != name {
		t.Fatalf("pattern = %v, want [%s]", resp.Pattern, name)
	}
	if resp.Shards == 0 || len(resp.Tasks) != resp.Shards {
		t.Fatalf("report covers %d tasks of %d shards", len(resp.Tasks), resp.Shards)
	}
	if resp.SkippedAbsent != resp.Shards-1 {
		t.Fatalf("SkippedAbsent = %d, want %d", resp.SkippedAbsent, resp.Shards-1)
	}
	// The engine is eager, so the one relevant shard is resident (or
	// α*-skipped) and never loaded.
	if resp.LoadTasks != 0 || resp.Loaded != 0 {
		t.Fatalf("eager explain reports loads: %+v", resp)
	}
	// Query-by-alpha form: every shard considered, none absent.
	rec = get(t, s, "/api/v1/explain?alpha=0.2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var qba ExplainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qba); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !qba.Full || qba.SkippedAbsent != 0 {
		t.Fatalf("query-by-alpha explain: full=%v skippedAbsent=%d", qba.Full, qba.SkippedAbsent)
	}

	if rec := get(t, s, "/api/v1/explain?alpha=-1"); rec.Code != http.StatusBadRequest {
		t.Errorf("negative alpha = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/api/v1/explain?pattern=no-such-item"); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown pattern = %d, want 400", rec.Code)
	}
	if rec := post(t, s, "/api/v1/explain", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/v1/explain = %d, want 405", rec.Code)
	}
}

// canonicalBody re-renders a JSON response with every volatile field
// (queryMicros, the only wall-clock value) zeroed, so lazy and eager
// responses can be compared byte for byte.
func canonicalBody(t *testing.T, body []byte) string {
	t.Helper()
	return regexp.MustCompile(`"queryMicros":\d+`).ReplaceAllString(string(body), `"queryMicros":0`)
}

// TestLazyServerMatchesEager is the acceptance check for sharded serving: a
// server over a lazily loaded sharded index must return byte-identical
// responses (modulo wall-clock latency) to a server over the in-memory tree,
// and after a cold-start single-item query /api/v1/enginestats must report
// fewer-than-all shards resident.
func TestLazyServerMatchesEager(t *testing.T) {
	d, err := gen.AMiner(0.08)
	if err != nil {
		t.Fatalf("AMiner: %v", err)
	}
	tree := tctree.Build(d.Network, tctree.BuildOptions{MaxDepth: 3})
	opts := Options{Dictionary: d.Dictionary, VertexNames: d.AuthorNames}
	eager, err := New(tree, opts)
	if err != nil {
		t.Fatalf("New(eager): %v", err)
	}

	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	lazyEngine, err := engine.NewLazy(idx, engine.Options{CacheSize: 16})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	lazyOpts := opts
	lazyOpts.Engine = lazyEngine
	lazy, err := New(nil, lazyOpts)
	if err != nil {
		t.Fatalf("New(lazy): %v", err)
	}

	// Cold start: one single-item query must leave most shards unloaded.
	item := tree.Root().Children[0].Item
	rec := get(t, lazy, "/api/v1/query?pattern="+strconv.Itoa(int(item))+"&alpha=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("cold single-item query = %d, body %s", rec.Code, rec.Body.String())
	}
	var stats engine.Stats
	if err := json.Unmarshal(get(t, lazy, "/api/v1/enginestats").Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode enginestats: %v", err)
	}
	if !stats.Lazy {
		t.Fatalf("enginestats does not report lazy mode: %+v", stats)
	}
	if stats.ResidentShards != 1 || stats.ResidentShards >= stats.Shards {
		t.Fatalf("after a cold single-item query %d of %d shards are resident, want exactly 1 (fewer than all)",
			stats.ResidentShards, stats.Shards)
	}
	if len(stats.ShardResidency) != stats.Shards {
		t.Fatalf("enginestats lists %d shards, want %d", len(stats.ShardResidency), stats.Shards)
	}

	// Byte-identical responses across every endpoint.
	urls := []string{
		"/api/v1/stats",
		"/api/v1/query?alpha=0.2",
		"/api/v1/query?pattern=" + strconv.Itoa(int(item)) + "&alpha=0",
		"/api/v1/query?alpha=0.1&k=5",
		"/api/v1/patterns?length=1",
		"/api/v1/patterns?length=2&limit=10",
		"/api/v1/vertex?id=3&alpha=0.1",
	}
	for _, url := range urls {
		want := get(t, eager, url)
		got := get(t, lazy, url)
		if got.Code != want.Code {
			t.Fatalf("GET %s: lazy = %d, eager = %d", url, got.Code, want.Code)
		}
		if canonicalBody(t, got.Body.Bytes()) != canonicalBody(t, want.Body.Bytes()) {
			t.Fatalf("GET %s: lazy response differs from eager\nlazy:  %s\neager: %s",
				url, got.Body.String(), want.Body.String())
		}
	}
	batch := `{"queries":[{"alpha":0.2},{"pattern":["` + strconv.Itoa(int(item)) + `"],"alpha":0}]}`
	want := post(t, eager, "/api/v1/batch", batch)
	got := post(t, lazy, "/api/v1/batch", batch)
	if got.Code != want.Code || canonicalBody(t, got.Body.Bytes()) != canonicalBody(t, want.Body.Bytes()) {
		t.Fatalf("batch: lazy response differs from eager\nlazy:  %s\neager: %s", got.Body.String(), want.Body.String())
	}
}

// TestLazyServerShardLoadFailure corrupts a shard file and expects the
// queries that touch it to surface a 500 with the checksum error, while
// queries avoiding the shard keep working.
func TestLazyServerShardLoadFailure(t *testing.T) {
	d, err := gen.AMiner(0.08)
	if err != nil {
		t.Fatalf("AMiner: %v", err)
	}
	tree := tctree.Build(d.Network, tctree.BuildOptions{MaxDepth: 2})
	dir := t.TempDir()
	m, err := tree.WriteSharded(dir)
	if err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	victim := m.Shards[0]
	path := filepath.Join(dir, victim.File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	eng, err := engine.NewLazy(idx, engine.Options{})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	s, err := New(nil, Options{Engine: eng})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec := get(t, s, "/api/v1/query?pattern="+strconv.Itoa(int(victim.Item))+"&alpha=0")
	if rec.Code != http.StatusInternalServerError || !strings.Contains(rec.Body.String(), "checksum") {
		t.Fatalf("query over corrupted shard = %d, body %s; want 500 with checksum error", rec.Code, rec.Body.String())
	}
	other := m.Shards[1]
	rec = get(t, s, "/api/v1/query?pattern="+strconv.Itoa(int(other.Item))+"&alpha=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("query avoiding the corrupted shard = %d, body %s", rec.Code, rec.Body.String())
	}
}

// TestContainsQueryEndpoint checks the containment mode of /api/v1/query:
// every returned theme is a superset of the query pattern, the response is
// tagged, and invalid combinations are client errors.
func TestContainsQueryEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := get(t, s, "/api/v1/query?pattern=data+mining&alpha=0&contains=true")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp.Contains {
		t.Fatalf("containment answer is not tagged: %+v", resp)
	}
	if len(resp.Communities) == 0 {
		t.Fatalf("no communities contain %q", "data mining")
	}
	for _, c := range resp.Communities {
		found := false
		for _, kw := range c.Theme {
			if kw == "data mining" {
				found = true
			}
		}
		if !found {
			t.Fatalf("theme %v does not contain the query item", c.Theme)
		}
	}

	// The sub-pattern answer for the same singleton is different work: it
	// retrieves exactly the one node, never supersets.
	rec = get(t, s, "/api/v1/query?pattern=data+mining&alpha=0")
	var sub QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sub.Contains {
		t.Fatalf("sub-pattern answer tagged as containment")
	}

	// Containment explain carries the mode and catalogue tallies.
	rec = get(t, s, "/api/v1/explain?pattern=data+mining&alpha=0&contains=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d, body %s", rec.Code, rec.Body.String())
	}
	var rep ExplainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decode explain: %v", err)
	}
	if rep.Mode != engine.ModeContaining {
		t.Fatalf("explain mode %q, want %q", rep.Mode, engine.ModeContaining)
	}

	// Invalid parameter values and combinations are client errors.
	for _, url := range []string{
		"/api/v1/query?contains=maybe",
		"/api/v1/query?contains=true&k=3",
		"/api/v1/query?contains=true&limit=2",
		"/api/v1/query?contains=true&stream=1",
	} {
		if rec := get(t, s, url); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", url, rec.Code)
		}
	}
}
