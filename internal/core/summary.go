package core

import (
	"fmt"

	"themecomm/internal/graph"
)

// Summary describes the theme communities of a mining result in aggregate:
// how many there are, how large they are, and how strongly they overlap.
// Overlap matters because, unlike partitioning community detection, theme
// communities of different themes may share vertices arbitrarily (Section 7.4
// of the paper).
type Summary struct {
	// Patterns is NP: the number of qualified patterns (maximal pattern trusses).
	Patterns int
	// Communities is the total number of theme communities (connected
	// components over all maximal pattern trusses).
	Communities int
	// MinSize, MaxSize and MeanSize describe community sizes in vertices.
	MinSize  int
	MaxSize  int
	MeanSize float64
	// MeanThemeLength is the average pattern length over all communities.
	MeanThemeLength float64
	// CoveredVertices is the number of distinct vertices that belong to at
	// least one theme community.
	CoveredVertices int
	// MaxMembership is the largest number of theme communities any single
	// vertex belongs to.
	MaxMembership int
	// MeanMembership is the average number of communities per covered vertex.
	MeanMembership float64
}

// Summarize computes the aggregate description of the result's communities.
func (r *Result) Summarize() Summary {
	comms := r.Communities()
	s := Summary{Patterns: r.NumPatterns(), Communities: len(comms)}
	if len(comms) == 0 {
		return s
	}
	membership := make(map[graph.VertexID]int)
	totalSize := 0
	totalTheme := 0
	s.MinSize = int(^uint(0) >> 1)
	for _, c := range comms {
		vs := c.Vertices()
		size := len(vs)
		totalSize += size
		totalTheme += c.Pattern.Len()
		if size < s.MinSize {
			s.MinSize = size
		}
		if size > s.MaxSize {
			s.MaxSize = size
		}
		for _, v := range vs {
			membership[v]++
		}
	}
	s.MeanSize = float64(totalSize) / float64(len(comms))
	s.MeanThemeLength = float64(totalTheme) / float64(len(comms))
	s.CoveredVertices = len(membership)
	totalMembership := 0
	for _, m := range membership {
		totalMembership += m
		if m > s.MaxMembership {
			s.MaxMembership = m
		}
	}
	s.MeanMembership = float64(totalMembership) / float64(len(membership))
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("patterns=%d communities=%d size[min=%d mean=%.1f max=%d] themeLen=%.1f covered=%d membership[mean=%.1f max=%d]",
		s.Patterns, s.Communities, s.MinSize, s.MeanSize, s.MaxSize, s.MeanThemeLength,
		s.CoveredVertices, s.MeanMembership, s.MaxMembership)
}
