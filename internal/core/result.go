// Package core implements the theme-community mining algorithms of the paper:
// the TCS baseline (Section 4.2), Theme Community Finder Apriori TCFA
// (Section 5.2, Algorithm 3) and Theme Community Finder Intersection TCFI
// (Section 5.3), together with the result bookkeeping (NP, NV, NE) used by
// the experiments of Section 7.
package core

import (
	"fmt"
	"sort"
	"time"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/truss"
)

// Options configures a mining run.
type Options struct {
	// Alpha is the minimum cohesion threshold α of Definition 3.3.
	Alpha float64
	// Epsilon is the minimum pattern-frequency threshold ε of the TCS
	// pre-filter (Section 4.2). It is ignored by TCFA and TCFI.
	Epsilon float64
	// MaxPatternLength, when positive, bounds the length of mined patterns.
	// Zero means unbounded. The exact algorithms terminate on their own; the
	// bound exists to cap worst-case work on adversarial inputs.
	MaxPatternLength int
	// Parallelism is the number of worker goroutines used to evaluate
	// candidate patterns concurrently. Values below 2 select the serial
	// implementation; 0 is serial too, keeping the default deterministic and
	// allocation-free. The mined result is identical regardless of the value.
	Parallelism int
}

// Result is the outcome of a mining run: the set of maximal pattern trusses
// C(α) = {C*_p(α) ≠ ∅}, keyed by pattern.
type Result struct {
	// Alpha is the threshold the run was performed with.
	Alpha float64
	// Trusses maps each qualified pattern to its maximal pattern truss.
	Trusses map[itemset.Key]*truss.Truss
	// Stats carries counters describing the run.
	Stats RunStats
}

// RunStats carries the bookkeeping counters of a mining run.
type RunStats struct {
	// Algorithm is the name of the mining algorithm ("TCS", "TCFA", "TCFI").
	Algorithm string
	// Duration is the wall-clock duration of the run.
	Duration time.Duration
	// MPTDCalls is the number of invocations of the Maximal Pattern Truss
	// Detector (Algorithm 1).
	MPTDCalls int
	// CandidatesGenerated is the number of candidate patterns considered.
	CandidatesGenerated int
	// CandidatesPruned is the number of candidate patterns discarded without
	// running MPTD (by the Apriori check or by the empty-intersection check).
	CandidatesPruned int
}

// newResult returns an empty result for the given threshold.
func newResult(alpha float64, algorithm string) *Result {
	return &Result{Alpha: alpha, Trusses: make(map[itemset.Key]*truss.Truss), Stats: RunStats{Algorithm: algorithm}}
}

// add records a non-empty maximal pattern truss.
func (r *Result) add(t *truss.Truss) {
	if t.Empty() {
		return
	}
	r.Trusses[t.Pattern.Key()] = t
}

// NumPatterns returns NP: the number of maximal pattern trusses found, which
// equals the number of qualified patterns.
func (r *Result) NumPatterns() int { return len(r.Trusses) }

// NumVertices returns NV: the total number of vertices over all maximal
// pattern trusses, counting a vertex once per truss containing it.
func (r *Result) NumVertices() int {
	n := 0
	for _, t := range r.Trusses {
		n += t.NumVertices()
	}
	return n
}

// NumEdges returns NE: the total number of edges over all maximal pattern
// trusses, counting an edge once per truss containing it.
func (r *Result) NumEdges() int {
	n := 0
	for _, t := range r.Trusses {
		n += t.NumEdges()
	}
	return n
}

// Patterns returns the qualified patterns sorted by length and then
// lexicographically.
func (r *Result) Patterns() []itemset.Itemset {
	out := make([]itemset.Itemset, 0, len(r.Trusses))
	for k := range r.Trusses {
		out = append(out, k.Itemset())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return itemset.Compare(out[i], out[j]) < 0
	})
	return out
}

// Truss returns the maximal pattern truss of pattern p, or nil if p is not
// qualified.
func (r *Result) Truss(p itemset.Itemset) *truss.Truss { return r.Trusses[p.Key()] }

// Community is one theme community: a maximal connected subgraph of a maximal
// pattern truss (Definition 3.5), annotated with its theme.
type Community struct {
	// Pattern is the theme p of the community.
	Pattern itemset.Itemset
	// Edges is the connected edge set of the community.
	Edges graph.EdgeSet
}

// Vertices returns the sorted vertices of the community.
func (c Community) Vertices() []graph.VertexID { return c.Edges.Vertices() }

// String summarises the community.
func (c Community) String() string {
	return fmt.Sprintf("core.Community{p=%v, |V|=%d, |E|=%d}", c.Pattern, len(c.Vertices()), c.Edges.Len())
}

// Communities extracts every theme community of the result: for each maximal
// pattern truss, its maximal connected subgraphs. Communities are ordered by
// pattern and then by smallest vertex.
func (r *Result) Communities() []Community {
	var out []Community
	for _, p := range r.Patterns() {
		t := r.Trusses[p.Key()]
		for _, comp := range t.Communities() {
			out = append(out, Community{Pattern: p, Edges: comp})
		}
	}
	return out
}

// Equal reports whether two results contain exactly the same maximal pattern
// trusses (same patterns with the same edge sets). Run statistics are ignored.
func (r *Result) Equal(other *Result) bool {
	if len(r.Trusses) != len(other.Trusses) {
		return false
	}
	for k, t := range r.Trusses {
		o, ok := other.Trusses[k]
		if !ok || !t.Edges.Equal(o.Edges) {
			return false
		}
	}
	return true
}

// String summarises the result.
func (r *Result) String() string {
	return fmt.Sprintf("core.Result{%s, α=%g, NP=%d, NV=%d, NE=%d}",
		r.Stats.Algorithm, r.Alpha, r.NumPatterns(), r.NumVertices(), r.NumEdges())
}
