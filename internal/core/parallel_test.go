package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestParallelMap(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		var sum int64
		n := 100
		parallelMap(workers, n, func(i int) { atomic.AddInt64(&sum, int64(i)) })
		if want := int64(n * (n - 1) / 2); sum != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, sum, want)
		}
	}
	// n = 0 is a no-op.
	parallelMap(4, 0, func(int) { t.Fatalf("must not be called") })
}

func TestParallelMiningMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 4; trial++ {
		nw := randomNetwork(rng, 18, 45, 5, 4)
		for _, alpha := range []float64{0, 0.4} {
			serialFI := TCFI(nw, Options{Alpha: alpha})
			parallelFI := TCFI(nw, Options{Alpha: alpha, Parallelism: 4})
			if !serialFI.Equal(parallelFI) {
				t.Fatalf("trial %d α=%v: parallel TCFI differs from serial", trial, alpha)
			}
			serialFA := TCFA(nw, Options{Alpha: alpha})
			parallelFA := TCFA(nw, Options{Alpha: alpha, Parallelism: 4})
			if !serialFA.Equal(parallelFA) {
				t.Fatalf("trial %d α=%v: parallel TCFA differs from serial", trial, alpha)
			}
			serialTCS := TCS(nw, Options{Alpha: alpha, Epsilon: 0.2})
			parallelTCS := TCS(nw, Options{Alpha: alpha, Epsilon: 0.2, Parallelism: 4})
			if !serialTCS.Equal(parallelTCS) {
				t.Fatalf("trial %d α=%v: parallel TCS differs from serial", trial, alpha)
			}
			// The statistics counters must also agree: parallelism changes
			// the schedule, not the work.
			if serialFI.Stats.MPTDCalls != parallelFI.Stats.MPTDCalls ||
				serialFI.Stats.CandidatesPruned != parallelFI.Stats.CandidatesPruned {
				t.Fatalf("trial %d α=%v: parallel TCFI counters differ", trial, alpha)
			}
		}
	}
}
