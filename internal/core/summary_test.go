package core

import (
	"math/rand"
	"strings"
	"testing"

	"themecomm/internal/dbnet"
)

func TestSummarizeEmptyResult(t *testing.T) {
	res := newResult(0, "TCFI")
	s := res.Summarize()
	if s.Patterns != 0 || s.Communities != 0 || s.CoveredVertices != 0 {
		t.Fatalf("summary of empty result should be zero: %+v", s)
	}
	if !strings.Contains(s.String(), "communities=0") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummarizePaperExample(t *testing.T) {
	nw := dbnet.PaperExample()
	res := TCFI(nw, Options{Alpha: 0.1})
	s := res.Summarize()
	if s.Patterns != res.NumPatterns() {
		t.Fatalf("patterns mismatch")
	}
	if s.Communities < 2 {
		t.Fatalf("paper example should have at least the two p-communities, got %d", s.Communities)
	}
	if s.MinSize < 3 {
		t.Fatalf("a theme community needs at least a triangle, min size %d", s.MinSize)
	}
	if s.MaxSize < s.MinSize || s.MeanSize < float64(s.MinSize) || s.MeanSize > float64(s.MaxSize) {
		t.Fatalf("size statistics inconsistent: %+v", s)
	}
	if s.CoveredVertices == 0 || s.CoveredVertices > nw.NumVertices() {
		t.Fatalf("covered vertices out of range: %d", s.CoveredVertices)
	}
	if s.MaxMembership < 1 || s.MeanMembership < 1 || s.MeanMembership > float64(s.MaxMembership) {
		t.Fatalf("membership statistics inconsistent: %+v", s)
	}
}

func TestSummarizeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 5; trial++ {
		nw := randomNetwork(rng, 16, 40, 4, 4)
		res := TCFI(nw, Options{Alpha: 0})
		s := res.Summarize()
		comms := res.Communities()
		if s.Communities != len(comms) {
			t.Fatalf("community count mismatch")
		}
		// Sum of community sizes equals mean*count within rounding.
		total := 0
		for _, c := range comms {
			total += len(c.Vertices())
		}
		if len(comms) > 0 {
			mean := float64(total) / float64(len(comms))
			if diff := mean - s.MeanSize; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("mean size mismatch: %v vs %v", mean, s.MeanSize)
			}
		}
		// Overlap is real whenever a vertex appears in two communities.
		if s.MaxMembership > 1 && s.CoveredVertices == 0 {
			t.Fatalf("inconsistent membership stats: %+v", s)
		}
	}
}
