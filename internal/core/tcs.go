package core

import (
	"time"

	"themecomm/internal/dbnet"
	"themecomm/internal/fpm"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/truss"
)

// TCS is the Theme Community Scanner baseline of Section 4.2. It enumerates
// the candidate patterns P = {p | ∃ v_i : f_i(p) > ε} by mining every vertex
// database with the frequency threshold ε, induces the theme network of each
// candidate from the full database network and runs MPTD on it.
//
// TCS trades accuracy for efficiency: a pattern whose frequency is at most ε
// on every vertex can still form a maximal pattern truss (if many such
// vertices are densely connected), and TCS will miss it. With ε = 0 TCS is
// exact but enumerates every pattern of every vertex database, which is
// intractable beyond small networks.
func TCS(nw *dbnet.Network, opts Options) *Result {
	start := time.Now()
	res := newResult(opts.Alpha, "TCS")

	candidates := tcsCandidates(nw, opts)
	res.Stats.CandidatesGenerated = len(candidates)
	if opts.Parallelism > 1 {
		nw.Freeze()
	}
	trusses := make([]*truss.Truss, len(candidates))
	parallelMap(opts.Parallelism, len(candidates), func(i int) {
		trusses[i] = truss.Detect(nw.ThemeNetwork(candidates[i]), opts.Alpha)
	})
	for _, t := range trusses {
		res.Stats.MPTDCalls++
		res.add(t)
	}
	res.Stats.Duration = time.Since(start)
	return res
}

// tcsCandidates enumerates the union over all vertices of the patterns whose
// frequency on that vertex exceeds ε, sorted canonically.
func tcsCandidates(nw *dbnet.Network, opts Options) []itemset.Itemset {
	seen := make(map[itemset.Key]bool)
	var out []itemset.Itemset
	for v := 0; v < nw.NumVertices(); v++ {
		db := nw.Database(graph.VertexID(v))
		if db.Empty() {
			continue
		}
		mined := fpm.Enumerate(db, fpm.Options{MinFrequency: opts.Epsilon, MaxLength: opts.MaxPatternLength})
		for _, p := range mined {
			k := p.Items.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, p.Items)
			}
		}
	}
	itemset.Sort(out)
	return out
}
