package core

import (
	"math/rand"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// randomNetwork builds a small random database network whose vertex databases
// draw from a small item universe, so that exhaustive baselines stay cheap.
func randomNetwork(rng *rand.Rand, n, m, items, maxTx int) *dbnet.Network {
	nw := dbnet.New(n)
	for i := 0; i < m; i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < n; v++ {
		ntx := 1 + rng.Intn(maxTx)
		for i := 0; i < ntx; i++ {
			l := 1 + rng.Intn(3)
			tx := make([]itemset.Item, l)
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(items))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				panic(err)
			}
		}
	}
	return nw
}

func TestPaperExampleMining(t *testing.T) {
	nw := dbnet.PaperExample()
	res := TCFI(nw, Options{Alpha: 0.1})

	pTruss := res.Truss(dbnet.PaperExampleP)
	if pTruss == nil {
		t.Fatalf("pattern p should be qualified at α=0.1")
	}
	comms := pTruss.Communities()
	if len(comms) != 2 {
		t.Fatalf("pattern p should form 2 theme communities, got %d", len(comms))
	}
	if len(comms[0].Vertices()) != 5 || len(comms[1].Vertices()) != 3 {
		t.Fatalf("community sizes = %d, %d; want 5, 3", len(comms[0].Vertices()), len(comms[1].Vertices()))
	}

	// At α = 0.3 pattern p no longer forms any truss.
	res = TCFI(nw, Options{Alpha: 0.3})
	if res.Truss(dbnet.PaperExampleP) != nil {
		t.Fatalf("pattern p should not be qualified at α=0.3")
	}
}

func TestAlgorithmsAgreeOnRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		nw := randomNetwork(rng, 14, 30, 4, 4)
		for _, alpha := range []float64{0, 0.2, 0.6, 1.2} {
			exact := TCS(nw, Options{Alpha: alpha, Epsilon: 0})
			tcfa := TCFA(nw, Options{Alpha: alpha})
			tcfi := TCFI(nw, Options{Alpha: alpha})
			if !tcfa.Equal(tcfi) {
				t.Fatalf("trial %d α=%v: TCFA and TCFI disagree (NP %d vs %d)",
					trial, alpha, tcfa.NumPatterns(), tcfi.NumPatterns())
			}
			if !exact.Equal(tcfa) {
				t.Fatalf("trial %d α=%v: TCS(ε=0) and TCFA disagree (NP %d vs %d)",
					trial, alpha, exact.NumPatterns(), tcfa.NumPatterns())
			}
			if exact.NumVertices() != tcfi.NumVertices() || exact.NumEdges() != tcfi.NumEdges() {
				t.Fatalf("trial %d α=%v: NV/NE mismatch", trial, alpha)
			}
		}
	}
}

func TestTCSWithEpsilonIsSubsetOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		nw := randomNetwork(rng, 16, 36, 5, 4)
		exact := TCFI(nw, Options{Alpha: 0})
		for _, eps := range []float64{0.1, 0.3, 0.6} {
			approx := TCS(nw, Options{Alpha: 0, Epsilon: eps})
			if approx.NumPatterns() > exact.NumPatterns() {
				t.Fatalf("TCS(ε=%v) found more patterns than the exact algorithms", eps)
			}
			// Every truss TCS finds must match the exact one for that pattern.
			for key, tr := range approx.Trusses {
				want, ok := exact.Trusses[key]
				if !ok {
					t.Fatalf("TCS(ε=%v) found pattern %v that the exact algorithm did not",
						eps, key.Itemset())
				}
				if !tr.Edges.Equal(want.Edges) {
					t.Fatalf("TCS(ε=%v) truss differs from exact for %v", eps, key.Itemset())
				}
			}
		}
	}
}

func TestGraphAntiMonotonicityOfResults(t *testing.T) {
	// Theorem 5.1 observed on mining output: for qualified p1 ⊆ p2,
	// C*_{p2}(α) ⊆ C*_{p1}(α).
	rng := rand.New(rand.NewSource(13))
	nw := randomNetwork(rng, 18, 40, 4, 5)
	res := TCFI(nw, Options{Alpha: 0})
	patterns := res.Patterns()
	for _, p1 := range patterns {
		for _, p2 := range patterns {
			if !p1.ProperSubsetOf(p2) {
				continue
			}
			if !res.Truss(p2).Edges.SubsetOf(res.Truss(p1).Edges) {
				t.Fatalf("anti-monotonicity violated for %v ⊆ %v", p1, p2)
			}
		}
	}
	// Pattern anti-monotonicity: every sub-pattern of a qualified pattern is
	// qualified (Proposition 5.2).
	for _, p := range patterns {
		for _, sub := range p.ImmediateSubsets() {
			if sub.Len() == 0 {
				continue
			}
			if res.Truss(sub) == nil {
				t.Fatalf("qualified pattern %v has unqualified sub-pattern %v", p, sub)
			}
		}
	}
}

func TestAlphaMonotonicityOfResults(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nw := randomNetwork(rng, 16, 36, 4, 4)
	prev := TCFI(nw, Options{Alpha: 0})
	for _, alpha := range []float64{0.2, 0.5, 1.0, 2.0} {
		cur := TCFI(nw, Options{Alpha: alpha})
		if cur.NumPatterns() > prev.NumPatterns() || cur.NumEdges() > prev.NumEdges() {
			t.Fatalf("results must shrink as α grows: α=%v NP=%d>%d or NE=%d>%d",
				alpha, cur.NumPatterns(), prev.NumPatterns(), cur.NumEdges(), prev.NumEdges())
		}
		// Every truss at the larger α is a subset of the truss at the smaller α.
		for key, tr := range cur.Trusses {
			p, ok := prev.Trusses[key]
			if !ok || !tr.Edges.SubsetOf(p.Edges) {
				t.Fatalf("truss at α=%v not nested in truss at smaller α", alpha)
			}
		}
		prev = cur
	}
}

func TestTCFIPrunesAtLeastAsMuchAsTCFA(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nw := randomNetwork(rng, 20, 50, 5, 5)
	tcfa := TCFA(nw, Options{Alpha: 0})
	tcfi := TCFI(nw, Options{Alpha: 0})
	if tcfi.Stats.MPTDCalls > tcfa.Stats.MPTDCalls {
		t.Fatalf("TCFI ran MPTD %d times, TCFA %d times; TCFI should never run it more often",
			tcfi.Stats.MPTDCalls, tcfa.Stats.MPTDCalls)
	}
	if tcfi.Stats.CandidatesPruned < tcfa.Stats.CandidatesPruned {
		t.Fatalf("TCFI pruned %d candidates, TCFA pruned %d",
			tcfi.Stats.CandidatesPruned, tcfa.Stats.CandidatesPruned)
	}
	if tcfa.Stats.Algorithm != "TCFA" || tcfi.Stats.Algorithm != "TCFI" {
		t.Fatalf("algorithm labels wrong: %q %q", tcfa.Stats.Algorithm, tcfi.Stats.Algorithm)
	}
	if tcfa.Stats.Duration <= 0 || tcfi.Stats.Duration <= 0 {
		t.Fatalf("durations should be recorded")
	}
}

func TestMaxPatternLength(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	nw := randomNetwork(rng, 14, 30, 4, 5)
	res := TCFI(nw, Options{Alpha: 0, MaxPatternLength: 1})
	for _, p := range res.Patterns() {
		if p.Len() > 1 {
			t.Fatalf("MaxPatternLength=1 returned pattern %v", p)
		}
	}
	resTCS := TCS(nw, Options{Alpha: 0, Epsilon: 0, MaxPatternLength: 1})
	if !res.Equal(resTCS) {
		t.Fatalf("bounded TCS and TCFI disagree")
	}
}

func TestResultAccessors(t *testing.T) {
	nw := dbnet.PaperExample()
	res := TCFI(nw, Options{Alpha: 0.1})
	if res.NumPatterns() == 0 {
		t.Fatalf("paper example should produce at least one truss")
	}
	if res.NumVertices() <= 0 || res.NumEdges() <= 0 {
		t.Fatalf("NV/NE should be positive")
	}
	comms := res.Communities()
	if len(comms) == 0 {
		t.Fatalf("no communities extracted")
	}
	for _, c := range comms {
		if c.Edges.Len() == 0 {
			t.Fatalf("community with no edges")
		}
		if len(c.Vertices()) < 3 {
			t.Fatalf("a theme community needs at least one triangle, got %v", c)
		}
		if c.String() == "" {
			t.Fatalf("empty community description")
		}
	}
	if res.String() == "" {
		t.Fatalf("empty result description")
	}
	if res.Truss(itemset.New(424242)) != nil {
		t.Fatalf("Truss of unknown pattern should be nil")
	}
	// Patterns are sorted by length then lexicographically.
	ps := res.Patterns()
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Len() > ps[i].Len() {
			t.Fatalf("Patterns not sorted by length: %v", ps)
		}
	}
}

func TestEmptyNetwork(t *testing.T) {
	nw := dbnet.New(0)
	for _, run := range []*Result{
		TCS(nw, Options{}), TCFA(nw, Options{}), TCFI(nw, Options{}),
	} {
		if run.NumPatterns() != 0 || run.NumVertices() != 0 || run.NumEdges() != 0 {
			t.Fatalf("mining an empty network should find nothing: %v", run)
		}
	}
	// A network with vertices but no edges has no trusses either.
	nw = dbnet.New(3)
	if err := nw.AddTransaction(0, itemset.New(1)); err != nil {
		t.Fatal(err)
	}
	if got := TCFI(nw, Options{}); got.NumPatterns() != 0 {
		t.Fatalf("edgeless network should have no theme communities")
	}
}

func TestResultEqualDetectsDifferences(t *testing.T) {
	nw := dbnet.PaperExample()
	a := TCFI(nw, Options{Alpha: 0.1})
	b := TCFI(nw, Options{Alpha: 0.25})
	if a.Equal(b) {
		t.Fatalf("results at different α should differ")
	}
	if !a.Equal(a) {
		t.Fatalf("a result must equal itself")
	}
}
