package core

import "sync"

// parallelMap runs fn(i) for every i in [0, n), spreading the calls over the
// given number of workers. With workers <= 1 it degenerates to a plain loop.
// fn must only write to per-index state (e.g. results[i]) — parallelMap adds
// no synchronization beyond the final barrier.
func parallelMap(workers, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
