package experiments

import (
	"fmt"
	"time"

	"themecomm/internal/core"
	"themecomm/internal/dbnet"
	"themecomm/internal/sampling"
)

// Table2Row is one row of Table 2: the statistics of one dataset.
type Table2Row struct {
	Dataset      string
	Vertices     int
	Edges        int
	Transactions int
	ItemsTotal   int
	ItemsUnique  int
}

// Table2 regenerates Table 2 of the paper: the statistics of the four dataset
// analogues.
func (s *Suite) Table2() ([]Table2Row, error) {
	var out []Table2Row
	for _, name := range AllDatasets() {
		nw, err := s.network(name)
		if err != nil {
			return nil, err
		}
		st := nw.Stats()
		out = append(out, Table2Row{
			Dataset:      name,
			Vertices:     st.Vertices,
			Edges:        st.Edges,
			Transactions: st.Transactions,
			ItemsTotal:   st.ItemsTotal,
			ItemsUnique:  st.ItemsUnique,
		})
	}
	return out, nil
}

// MiningMethod identifies one mining configuration of Figures 3 and 4.
type MiningMethod struct {
	// Name is the display label, e.g. "TCFI" or "TCS(ε=0.1)".
	Name string
	// Epsilon is the TCS pre-filter threshold; it is meaningful only when
	// Kind is MethodTCS.
	Epsilon float64
	// Kind selects the algorithm.
	Kind MethodKind
}

// MethodKind enumerates the mining algorithms.
type MethodKind int

// The mining algorithms compared in the paper's experiments.
const (
	MethodTCS MethodKind = iota
	MethodTCFA
	MethodTCFI
)

// Methods returns the method list of Figures 3 and 4: TCFI, TCFA and TCS for
// each configured ε.
func (s *Suite) Methods() []MiningMethod {
	out := []MiningMethod{
		{Name: "TCFI", Kind: MethodTCFI},
		{Name: "TCFA", Kind: MethodTCFA},
	}
	for _, eps := range s.Config.Epsilons {
		out = append(out, MiningMethod{Name: fmt.Sprintf("TCS(ε=%.1f)", eps), Kind: MethodTCS, Epsilon: eps})
	}
	return out
}

// run executes one mining configuration on a network.
func (s *Suite) run(nw *dbnet.Network, m MiningMethod, alpha float64) *core.Result {
	opts := core.Options{Alpha: alpha, MaxPatternLength: s.Config.MaxPatternLength}
	switch m.Kind {
	case MethodTCS:
		opts.Epsilon = m.Epsilon
		return core.TCS(nw, opts)
	case MethodTCFA:
		return core.TCFA(nw, opts)
	default:
		return core.TCFI(nw, opts)
	}
}

// Figure3Row is one data point of Figure 3: one (dataset, method, α) cell with
// the four reported metrics.
type Figure3Row struct {
	Dataset     string
	Method      string
	Alpha       float64
	TimeSeconds float64
	NP          int
	NV          int
	NE          int
	MPTDCalls   int
}

// Figure3 regenerates Figure 3: the effect of α (and of ε for TCS) on the
// running time and on the number of detected patterns, vertices and edges,
// measured on BFS samples of the BK, GW and AMINER analogues.
func (s *Suite) Figure3() ([]Figure3Row, error) {
	var out []Figure3Row
	for _, name := range MiningDatasets() {
		sample, err := s.MiningSample(name)
		if err != nil {
			return nil, err
		}
		for _, method := range s.Methods() {
			for _, alpha := range s.Config.Alphas {
				res := s.run(sample.Network, method, alpha)
				out = append(out, Figure3Row{
					Dataset:     name,
					Method:      method.Name,
					Alpha:       alpha,
					TimeSeconds: res.Stats.Duration.Seconds(),
					NP:          res.NumPatterns(),
					NV:          res.NumVertices(),
					NE:          res.NumEdges(),
					MPTDCalls:   res.Stats.MPTDCalls,
				})
			}
		}
	}
	return out, nil
}

// Figure4Row is one data point of Figure 4: one (dataset, method, sample
// size) cell with time, NP and the average truss sizes NV/NP and NE/NP.
type Figure4Row struct {
	Dataset      string
	Method       string
	SampledEdges int
	TimeSeconds  float64
	NP           int
	NVPerNP      float64
	NEPerNP      float64
}

// Figure4 regenerates Figure 4: the scalability of the mining algorithms as
// the number of BFS-sampled edges grows, with α = 0 (the worst case).
func (s *Suite) Figure4() ([]Figure4Row, error) {
	var out []Figure4Row
	for _, name := range MiningDatasets() {
		nw, err := s.network(name)
		if err != nil {
			return nil, err
		}
		samples, err := sampling.Series(nw, s.Config.EdgeBudgets, s.rng)
		if err != nil {
			return nil, err
		}
		for _, sample := range samples {
			for _, method := range s.Methods() {
				start := time.Now()
				res := s.run(sample.Network, method, 0)
				elapsed := time.Since(start)
				row := Figure4Row{
					Dataset:      name,
					Method:       method.Name,
					SampledEdges: sample.Network.NumEdges(),
					TimeSeconds:  elapsed.Seconds(),
					NP:           res.NumPatterns(),
				}
				if res.NumPatterns() > 0 {
					row.NVPerNP = float64(res.NumVertices()) / float64(res.NumPatterns())
					row.NEPerNP = float64(res.NumEdges()) / float64(res.NumPatterns())
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}
