package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// tinyConfig keeps the experiment harness fast enough for unit tests while
// still exercising every code path.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.08
	cfg.Alphas = []float64{0, 0.3, 1.0}
	cfg.Epsilons = []float64{0.1, 0.3}
	cfg.MiningSampleEdges = map[string]int{"BK": 150, "GW": 150, "AMINER": 120}
	cfg.EdgeBudgets = []int{50, 150}
	cfg.MaxPatternLength = 3
	cfg.QueryAlphaSteps = 4
	cfg.QueriesPerPoint = 3
	return cfg
}

func TestTable2(t *testing.T) {
	s := NewSuite(tinyConfig())
	rows, err := s.Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Vertices <= 0 || r.Edges <= 0 || r.Transactions <= 0 || r.ItemsUnique <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.ItemsTotal < r.ItemsUnique {
			t.Fatalf("items total < unique in %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable2(&buf, rows); err != nil {
		t.Fatalf("WriteTable2: %v", err)
	}
	if !strings.Contains(buf.String(), "AMINER") {
		t.Fatalf("formatted table missing dataset name:\n%s", buf.String())
	}
}

func TestFigure3ShapesHold(t *testing.T) {
	s := NewSuite(tinyConfig())
	rows, err := s.Figure3()
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(rows) == 0 {
		t.Fatalf("no rows")
	}

	// Index rows by (dataset, method, alpha).
	type key struct {
		ds, m string
		a     float64
	}
	idx := make(map[key]Figure3Row)
	for _, r := range rows {
		idx[key{r.Dataset, r.Method, r.Alpha}] = r
	}
	cfg := s.Config
	for _, ds := range MiningDatasets() {
		for _, alpha := range cfg.Alphas {
			tcfa, okA := idx[key{ds, "TCFA", alpha}]
			tcfi, okI := idx[key{ds, "TCFI", alpha}]
			if !okA || !okI {
				t.Fatalf("missing TCFA/TCFI rows for %s α=%v", ds, alpha)
			}
			// Exactness: TCFA and TCFI agree on NP, NV, NE.
			if tcfa.NP != tcfi.NP || tcfa.NV != tcfi.NV || tcfa.NE != tcfi.NE {
				t.Fatalf("%s α=%v: TCFA (%d,%d,%d) and TCFI (%d,%d,%d) disagree",
					ds, alpha, tcfa.NP, tcfa.NV, tcfa.NE, tcfi.NP, tcfi.NV, tcfi.NE)
			}
			// TCFI never runs MPTD more often than TCFA.
			if tcfi.MPTDCalls > tcfa.MPTDCalls {
				t.Fatalf("%s α=%v: TCFI ran MPTD more often than TCFA", ds, alpha)
			}
			// TCS never finds more patterns than the exact methods.
			for _, eps := range cfg.Epsilons {
				tcs, ok := idx[key{ds, tcsName(eps), alpha}]
				if !ok {
					t.Fatalf("missing TCS row for %s α=%v ε=%v", ds, alpha, eps)
				}
				if tcs.NP > tcfi.NP {
					t.Fatalf("%s α=%v: TCS(ε=%v) found %d patterns, exact found %d",
						ds, alpha, eps, tcs.NP, tcfi.NP)
				}
			}
		}
		// NP is non-increasing in α for the exact methods.
		prev := -1
		for _, alpha := range cfg.Alphas {
			np := idx[key{ds, "TCFI", alpha}].NP
			if prev >= 0 && np > prev {
				t.Fatalf("%s: NP grew from %d to %d as α increased to %v", ds, prev, np, alpha)
			}
			prev = np
		}
	}
	var buf bytes.Buffer
	if err := WriteFigure3(&buf, rows); err != nil {
		t.Fatalf("WriteFigure3: %v", err)
	}
}

func tcsName(eps float64) string {
	switch eps {
	case 0.1:
		return "TCS(ε=0.1)"
	case 0.2:
		return "TCS(ε=0.2)"
	case 0.3:
		return "TCS(ε=0.3)"
	}
	return ""
}

func TestFigure4ShapesHold(t *testing.T) {
	s := NewSuite(tinyConfig())
	rows, err := s.Figure4()
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(rows) == 0 {
		t.Fatalf("no rows")
	}
	// For every dataset, NP with TCFI is non-decreasing in the sample size,
	// and TCFA finds the same NP as TCFI on every sample.
	perDataset := map[string][]Figure4Row{}
	for _, r := range rows {
		perDataset[r.Dataset] = append(perDataset[r.Dataset], r)
	}
	for ds, rs := range perDataset {
		byMethod := map[string]map[int]Figure4Row{}
		for _, r := range rs {
			if byMethod[r.Method] == nil {
				byMethod[r.Method] = map[int]Figure4Row{}
			}
			byMethod[r.Method][r.SampledEdges] = r
		}
		for size, fi := range byMethod["TCFI"] {
			fa, ok := byMethod["TCFA"][size]
			if !ok {
				t.Fatalf("%s: missing TCFA row for size %d", ds, size)
			}
			if fa.NP != fi.NP {
				t.Fatalf("%s size %d: TCFA NP=%d, TCFI NP=%d", ds, size, fa.NP, fi.NP)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteFigure4(&buf, rows); err != nil {
		t.Fatalf("WriteFigure4: %v", err)
	}
}

func TestTable3AndFigure5(t *testing.T) {
	s := NewSuite(tinyConfig())
	t3, err := s.Table3()
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(t3) != 4 {
		t.Fatalf("expected 4 Table 3 rows, got %d", len(t3))
	}
	for _, r := range t3 {
		if r.Nodes <= 0 {
			t.Fatalf("dataset %s indexed no nodes", r.Dataset)
		}
		if r.IndexingSeconds < 0 {
			t.Fatalf("negative indexing time")
		}
	}

	qba, err := s.Figure5QBA()
	if err != nil {
		t.Fatalf("Figure5QBA: %v", err)
	}
	if len(qba) == 0 {
		t.Fatalf("no QBA rows")
	}
	// Retrieved nodes are non-increasing in α_q per dataset, and at α_q = 0
	// they equal the node count of the tree.
	nodesByDataset := map[string]int{}
	for _, r := range t3 {
		nodesByDataset[r.Dataset] = r.Nodes
	}
	prev := map[string]int{}
	seen := map[string]bool{}
	for _, r := range qba {
		if !seen[r.Dataset] {
			seen[r.Dataset] = true
			if r.AlphaQ != 0 || r.RetrievedNodes != nodesByDataset[r.Dataset] {
				t.Fatalf("%s: first QBA point should retrieve every node (%d), got %d at α=%v",
					r.Dataset, nodesByDataset[r.Dataset], r.RetrievedNodes, r.AlphaQ)
			}
		} else if r.RetrievedNodes > prev[r.Dataset] {
			t.Fatalf("%s: retrieved nodes grew as α_q increased", r.Dataset)
		}
		prev[r.Dataset] = r.RetrievedNodes
	}

	qbp, err := s.Figure5QBP()
	if err != nil {
		t.Fatalf("Figure5QBP: %v", err)
	}
	if len(qbp) == 0 {
		t.Fatalf("no QBP rows")
	}
	for _, r := range qbp {
		if r.PatternLength < 1 || r.RetrievedNodes < 1 {
			t.Fatalf("degenerate QBP row %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable3(&buf, t3); err != nil {
		t.Fatalf("WriteTable3: %v", err)
	}
	if err := WriteFigure5(&buf, append(qba, qbp...)); err != nil {
		t.Fatalf("WriteFigure5: %v", err)
	}
}

func TestCaseStudy(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.15 // the case study needs a few named research groups
	s := NewSuite(cfg)
	comms, err := s.CaseStudy(6)
	if err != nil {
		t.Fatalf("CaseStudy: %v", err)
	}
	if len(comms) == 0 {
		t.Fatalf("case study found no communities")
	}
	if len(comms) > 6 {
		t.Fatalf("case study returned more communities than requested")
	}
	for _, c := range comms {
		if len(c.Theme) < 2 {
			t.Fatalf("case-study community with trivial theme: %+v", c)
		}
		if len(c.Authors) < 3 {
			t.Fatalf("case-study community with too few authors: %+v", c)
		}
	}
	var buf bytes.Buffer
	if err := WriteCaseStudy(&buf, comms); err != nil {
		t.Fatalf("WriteCaseStudy: %v", err)
	}
	if !strings.Contains(buf.String(), "authors:") {
		t.Fatalf("case study output missing authors:\n%s", buf.String())
	}
}

func TestQueryPatternOfLength(t *testing.T) {
	s := NewSuite(tinyConfig())
	tree, err := s.Tree("BK")
	if err != nil {
		t.Fatalf("Tree: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	if p, ok := QueryPatternOfLength(tree, 1, rng); !ok || p.Len() != 1 {
		t.Fatalf("expected a length-1 pattern, got %v (%v)", p, ok)
	}
	if _, ok := QueryPatternOfLength(tree, 99, rng); ok {
		t.Fatalf("length 99 should not exist")
	}
}

func TestSuiteCaching(t *testing.T) {
	s := NewSuite(tinyConfig())
	d1, err := s.Dataset("BK")
	if err != nil {
		t.Fatalf("Dataset: %v", err)
	}
	d2, err := s.Dataset("BK")
	if err != nil {
		t.Fatalf("Dataset: %v", err)
	}
	if d1.Network != d2.Network {
		t.Fatalf("dataset cache not reused")
	}
	t1, err := s.Tree("BK")
	if err != nil {
		t.Fatalf("Tree: %v", err)
	}
	t2, err := s.Tree("BK")
	if err != nil {
		t.Fatalf("Tree: %v", err)
	}
	if t1 != t2 {
		t.Fatalf("tree cache not reused")
	}
	if _, err := s.Dataset("nope"); err == nil {
		t.Fatalf("unknown dataset should error")
	}
}
