package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// The formatting helpers render experiment rows as aligned text tables whose
// columns match the rows and series the paper reports. They are shared by
// cmd/tcbench and by the examples.

// WriteTable2 renders Table 2 rows.
func WriteTable2(w io.Writer, rows []Table2Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\t#Vertices\t#Edges\t#Transactions\t#Items(total)\t#Items(unique)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Dataset, r.Vertices, r.Edges, r.Transactions, r.ItemsTotal, r.ItemsUnique)
	}
	return tw.Flush()
}

// WriteFigure3 renders Figure 3 rows grouped by dataset and method.
func WriteFigure3(w io.Writer, rows []Figure3Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tMethod\tα\tTime(s)\tNP\tNV\tNE\tMPTD calls")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.4f\t%d\t%d\t%d\t%d\n",
			r.Dataset, r.Method, r.Alpha, r.TimeSeconds, r.NP, r.NV, r.NE, r.MPTDCalls)
	}
	return tw.Flush()
}

// WriteFigure4 renders Figure 4 rows.
func WriteFigure4(w io.Writer, rows []Figure4Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tMethod\t#SampledEdges\tTime(s)\tNP\tNV/NP\tNE/NP")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.4f\t%d\t%.2f\t%.2f\n",
			r.Dataset, r.Method, r.SampledEdges, r.TimeSeconds, r.NP, r.NVPerNP, r.NEPerNP)
	}
	return tw.Flush()
}

// WriteTable3 renders Table 3 rows.
func WriteTable3(w io.Writer, rows []Table3Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tIndexing Time(s)\tMemory(MB)\t#Nodes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%d\n", r.Dataset, r.IndexingSeconds, r.MemoryMB, r.Nodes)
	}
	return tw.Flush()
}

// WriteFigure5 renders Figure 5 rows (both QBA and QBP workloads).
func WriteFigure5(w io.Writer, rows []Figure5Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tWorkload\tα_q\tPatternLen\tQueryTime(s)\tRetrievedNodes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%d\t%.6f\t%d\n",
			r.Dataset, r.Workload, r.AlphaQ, r.PatternLength, r.QuerySeconds, r.RetrievedNodes)
	}
	return tw.Flush()
}

// WriteCaseStudy renders the case-study communities in the style of Table 4
// and Figure 6.
func WriteCaseStudy(w io.Writer, comms []CaseStudyCommunity) error {
	for i, c := range comms {
		if _, err := fmt.Fprintf(w, "p%d: %s\n    authors: %s\n",
			i+1, strings.Join(c.Theme, ", "), strings.Join(c.Authors, ", ")); err != nil {
			return err
		}
	}
	return nil
}
