package experiments

import (
	"math/rand"
	"time"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// Table3Row is one row of Table 3: the TC-Tree indexing performance on one
// dataset.
type Table3Row struct {
	Dataset         string
	IndexingSeconds float64
	MemoryMB        float64
	Nodes           int
}

// Table3 regenerates Table 3: TC-Tree indexing time, memory footprint and node
// count on every dataset analogue. Building the tree also warms the suite's
// tree cache used by Figure 5.
func (s *Suite) Table3() ([]Table3Row, error) {
	var out []Table3Row
	for _, name := range AllDatasets() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		before := heapAllocMB()
		start := time.Now()
		tree := tctree.Build(d.Network, tctree.BuildOptions{
			Parallelism: s.Config.TreeParallelism,
			MaxDepth:    s.Config.MaxPatternLength,
		})
		elapsed := time.Since(start)
		after := heapAllocMB()
		s.trees[name] = tree
		mem := after - before
		if mem < 0 {
			mem = after
		}
		out = append(out, Table3Row{
			Dataset:         name,
			IndexingSeconds: elapsed.Seconds(),
			MemoryMB:        mem,
			Nodes:           tree.NumNodes(),
		})
	}
	return out, nil
}

// Figure5Row is one data point of Figure 5: the average query time and number
// of retrieved nodes for one query setting on one dataset.
type Figure5Row struct {
	Dataset        string
	Workload       string // "QBA" or "QBP"
	AlphaQ         float64
	PatternLength  int
	QuerySeconds   float64
	RetrievedNodes int
}

// Figure5QBA regenerates Figures 5(a)-(d): query-by-alpha performance on the
// served plan→execute path (Suite.Engine). The query pattern is the full
// item universe and α_q sweeps from 0 to the largest non-trivial threshold
// of the tree.
func (s *Suite) Figure5QBA() ([]Figure5Row, error) {
	var out []Figure5Row
	for _, name := range AllDatasets() {
		eng, err := s.Engine(name)
		if err != nil {
			return nil, err
		}
		maxAlpha := eng.MaxAlpha()
		steps := s.Config.QueryAlphaSteps
		if steps < 2 {
			steps = 2
		}
		for i := 0; i < steps; i++ {
			alphaQ := maxAlpha * float64(i) / float64(steps-1)
			var total time.Duration
			retrieved := 0
			reps := s.Config.QueriesPerPoint
			if reps < 1 {
				reps = 1
			}
			for r := 0; r < reps; r++ {
				qr, err := eng.QueryByAlpha(alphaQ)
				if err != nil {
					return nil, err
				}
				total += qr.Duration
				retrieved = qr.RetrievedNodes
			}
			out = append(out, Figure5Row{
				Dataset:        name,
				Workload:       "QBA",
				AlphaQ:         alphaQ,
				QuerySeconds:   total.Seconds() / float64(reps),
				RetrievedNodes: retrieved,
			})
		}
	}
	return out, nil
}

// Figure5QBP regenerates Figures 5(e)-(h): query-by-pattern performance on
// the served plan→execute path (Suite.Engine). For every indexed pattern
// length, query patterns are sampled from the tree's nodes of that length
// and queried with α_q = 0.
func (s *Suite) Figure5QBP() ([]Figure5Row, error) {
	rng := rand.New(rand.NewSource(s.Config.Seed + 1))
	var out []Figure5Row
	for _, name := range AllDatasets() {
		tree, err := s.Tree(name)
		if err != nil {
			return nil, err
		}
		eng, err := s.Engine(name)
		if err != nil {
			return nil, err
		}
		depth := tree.Depth()
		for length := 1; length <= depth; length++ {
			patterns := tree.PatternsAtDepth(length)
			if len(patterns) == 0 {
				continue
			}
			reps := s.Config.QueriesPerPoint
			if reps < 1 {
				reps = 1
			}
			var total time.Duration
			totalRetrieved := 0
			for r := 0; r < reps; r++ {
				q := patterns[rng.Intn(len(patterns))]
				qr, err := eng.Query(q, 0)
				if err != nil {
					return nil, err
				}
				total += qr.Duration
				totalRetrieved += qr.RetrievedNodes
			}
			out = append(out, Figure5Row{
				Dataset:        name,
				Workload:       "QBP",
				PatternLength:  length,
				QuerySeconds:   total.Seconds() / float64(reps),
				RetrievedNodes: totalRetrieved / reps,
			})
		}
	}
	return out, nil
}

// CaseStudyCommunity is one named theme community of the case study
// (Table 4 / Figure 6): a set of collaborating authors and the keyword theme
// they share.
type CaseStudyCommunity struct {
	Theme   []string
	Authors []string
}

// CaseStudy regenerates the case study of Section 7.4 on the co-author
// analogue: it queries the AMINER TC-Tree (through the serving engine) at
// the configured α, keeps the communities whose themes contain at least two
// keywords, and reports the author names and keyword themes of the largest
// ones.
func (s *Suite) CaseStudy(maxCommunities int) ([]CaseStudyCommunity, error) {
	d, err := s.Dataset("AMINER")
	if err != nil {
		return nil, err
	}
	eng, err := s.Engine("AMINER")
	if err != nil {
		return nil, err
	}
	qr, err := eng.QueryByAlpha(s.Config.CaseStudyAlpha)
	if err != nil {
		return nil, err
	}
	comms := qr.Communities()

	var out []CaseStudyCommunity
	for _, c := range comms {
		if c.Pattern.Len() < 2 {
			continue
		}
		theme := d.Dictionary.Names(c.Pattern)
		var authors []string
		for _, v := range c.Vertices() {
			if int(v) < len(d.AuthorNames) {
				authors = append(authors, d.AuthorNames[v])
			}
		}
		out = append(out, CaseStudyCommunity{Theme: theme, Authors: authors})
	}
	// Largest communities first, to mirror the presentation of Figure 6.
	sortCaseStudy(out)
	if maxCommunities > 0 && len(out) > maxCommunities {
		out = out[:maxCommunities]
	}
	return out, nil
}

func sortCaseStudy(cs []CaseStudyCommunity) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && score(cs[j]) > score(cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// score ranks case-study communities: longer themes first, then more authors.
func score(c CaseStudyCommunity) int { return 1000*len(c.Theme) + len(c.Authors) }

// QueryPatternOfLength samples one indexed pattern of the given length from a
// tree; it is exported for the query benchmarks.
func QueryPatternOfLength(tree *tctree.Tree, length int, rng *rand.Rand) (itemset.Itemset, bool) {
	patterns := tree.PatternsAtDepth(length)
	if len(patterns) == 0 {
		return nil, false
	}
	return patterns[rng.Intn(len(patterns))], true
}
