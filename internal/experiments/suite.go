// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 7) on the generated dataset analogues:
//
//	Table 2   — dataset statistics
//	Figure 3  — effect of the cohesion threshold α and the TCS frequency
//	            threshold ε on time, NP, NV and NE
//	Figure 4  — scalability of TCS, TCFA and TCFI with the number of sampled
//	            edges
//	Table 3   — TC-Tree indexing time, memory and node count
//	Figure 5  — TC-Tree query time and retrieved nodes, by α (QBA) and by
//	            query pattern length (QBP)
//	Table 4 / Figure 6 — case study of named theme communities in the
//	            co-author network
//
// The absolute numbers differ from the paper (the datasets are synthetic
// analogues and the hardware differs), but the harness preserves the shapes
// the paper reports; see EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"

	"themecomm/internal/dbnet"
	"themecomm/internal/engine"
	"themecomm/internal/gen"
	"themecomm/internal/sampling"
	"themecomm/internal/tctree"
)

// Config controls the dataset scale and the parameter grids of the
// experiments. The zero value is not useful; start from DefaultConfig.
type Config struct {
	// Scale is the dataset scale factor (1 = the generators' defaults).
	Scale gen.Scale
	// Seed seeds the samplers and query generators.
	Seed int64
	// Alphas is the grid of cohesion thresholds used by Figure 3.
	Alphas []float64
	// Epsilons is the grid of TCS frequency thresholds used by Figure 3.
	Epsilons []float64
	// MiningSampleEdges is the BFS sample size (in edges) used by Figure 3
	// for each dataset; the paper uses 10,000 edges for BK and GW and 5,000
	// for AMINER.
	MiningSampleEdges map[string]int
	// EdgeBudgets is the series of sample sizes used by Figure 4.
	EdgeBudgets []int
	// MaxPatternLength caps the pattern length for every miner so the
	// exhaustive baselines stay tractable; it applies equally to all methods.
	MaxPatternLength int
	// QueryAlphaSteps is the number of α_q values probed by Figure 5 (QBA).
	QueryAlphaSteps int
	// QueriesPerPoint is the number of repetitions averaged per query point.
	QueriesPerPoint int
	// CaseStudyAlpha is the cohesion threshold of the case study.
	CaseStudyAlpha float64
	// TreeParallelism is the worker count of the TC-Tree first level.
	TreeParallelism int
}

// DefaultConfig returns a laptop/CI-friendly configuration. The command-line
// harness (cmd/tcbench) exposes flags to raise the scale towards the paper's
// settings.
func DefaultConfig() Config {
	return Config{
		Scale:    0.25,
		Seed:     42,
		Alphas:   []float64{0, 0.1, 0.2, 0.3, 0.5, 1.0, 1.5, 2.0},
		Epsilons: []float64{0.1, 0.2, 0.3},
		MiningSampleEdges: map[string]int{
			"BK":     1000,
			"GW":     1000,
			"AMINER": 500,
		},
		EdgeBudgets:      []int{100, 300, 1000, 3000},
		MaxPatternLength: 4,
		QueryAlphaSteps:  8,
		QueriesPerPoint:  20,
		CaseStudyAlpha:   0.1,
		TreeParallelism:  0,
	}
}

// Suite generates and caches the dataset analogues, their BFS samples and
// their TC-Trees so that the individual experiments can share them.
type Suite struct {
	Config   Config
	rng      *rand.Rand
	datasets map[string]gen.Dataset
	samples  map[string]*sampling.Sample
	trees    map[string]*tctree.Tree
	engines  map[string]*engine.Engine
}

// NewSuite returns a suite with the given configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		Config:   cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		datasets: make(map[string]gen.Dataset),
		samples:  make(map[string]*sampling.Sample),
		trees:    make(map[string]*tctree.Tree),
		engines:  make(map[string]*engine.Engine),
	}
}

// MiningDatasets lists the datasets used by the mining experiments
// (Figures 3 and 4), in the paper's order.
func MiningDatasets() []string { return []string{"BK", "GW", "AMINER"} }

// AllDatasets lists every dataset analogue, in the paper's order.
func AllDatasets() []string { return []string{"BK", "GW", "AMINER", "SYN"} }

// Dataset returns the generated dataset analogue, generating it on first use.
func (s *Suite) Dataset(name string) (gen.Dataset, error) {
	if d, ok := s.datasets[name]; ok {
		return d, nil
	}
	d, err := gen.ByName(name, s.Config.Scale)
	if err != nil {
		return gen.Dataset{}, err
	}
	s.datasets[name] = d
	return d, nil
}

// MiningSample returns the BFS sample of the dataset used by the Figure 3
// experiment, generating it on first use.
func (s *Suite) MiningSample(name string) (*sampling.Sample, error) {
	if sm, ok := s.samples[name]; ok {
		return sm, nil
	}
	d, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	budget, ok := s.Config.MiningSampleEdges[name]
	if !ok || budget <= 0 || budget > d.Network.NumEdges() {
		budget = d.Network.NumEdges()
	}
	sm, err := sampling.BFS(d.Network, budget, s.rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: sampling %s: %w", name, err)
	}
	s.samples[name] = sm
	return sm, nil
}

// Tree returns the TC-Tree of the dataset, building it on first use.
func (s *Suite) Tree(name string) (*tctree.Tree, error) {
	if t, ok := s.trees[name]; ok {
		return t, nil
	}
	d, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	t := tctree.Build(d.Network, tctree.BuildOptions{
		Parallelism: s.Config.TreeParallelism,
		MaxDepth:    s.Config.MaxPatternLength,
	})
	s.trees[name] = t
	return t, nil
}

// Engine returns the query-serving engine over the dataset's TC-Tree,
// building both on first use. The query experiments (Figure 5, case study)
// run through it so the reported numbers reflect the served plan→execute
// path rather than a raw tree traversal. The result cache is disabled:
// repetitions must measure execution, not cache hits.
func (s *Suite) Engine(name string) (*engine.Engine, error) {
	if e, ok := s.engines[name]; ok {
		return e, nil
	}
	t, err := s.Tree(name)
	if err != nil {
		return nil, err
	}
	e, err := engine.New(t, engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: engine for %s: %w", name, err)
	}
	s.engines[name] = e
	return e, nil
}

// network is a small helper for experiments that only need the network.
func (s *Suite) network(name string) (*dbnet.Network, error) {
	d, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	return d.Network, nil
}

// heapAllocMB returns the live heap size in MiB after a garbage collection.
// It approximates the "Memory" column of Table 3.
func heapAllocMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}
