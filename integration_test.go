package themecomm_test

// End-to-end integration tests exercising the full pipeline through the
// public API: generate → persist → reload → mine → index → persist → reload →
// query → serve over HTTP. These are the flows the command-line tools compose.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"themecomm"
)

func TestEndToEndPipeline(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "bk.dbnet")
	treePath := filepath.Join(dir, "bk.tctree")

	// 1. Generate a dataset analogue and persist it.
	d, err := themecomm.GenerateDataset("BK", 0.1)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	if err := themecomm.WriteNetworkFile(netPath, d.Network, d.Dictionary); err != nil {
		t.Fatalf("WriteNetworkFile: %v", err)
	}

	// 2. Reload it and check it round-tripped.
	nw, dict, err := themecomm.ReadNetworkFile(netPath)
	if err != nil {
		t.Fatalf("ReadNetworkFile: %v", err)
	}
	if nw.Stats() != d.Network.Stats() {
		t.Fatalf("reloaded network differs: %+v vs %+v", nw.Stats(), d.Network.Stats())
	}

	// 3. Mine it and index it; the index must agree with the miner at any α.
	const alpha = 0.2
	mined := themecomm.MineTCFI(nw, themecomm.MiningOptions{Alpha: alpha, MaxPatternLength: 3})
	tree := themecomm.BuildTree(nw, themecomm.TreeBuildOptions{MaxDepth: 3})
	if err := tree.WriteFile(treePath); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	// 4. Reload the index and answer the same query.
	reloaded, err := themecomm.ReadTreeFile(treePath)
	if err != nil {
		t.Fatalf("ReadTreeFile: %v", err)
	}
	answer := reloaded.MiningResult(alpha)
	if !answer.Equal(mined) {
		t.Fatalf("index answer (NP=%d) differs from mining (NP=%d)", answer.NumPatterns(), mined.NumPatterns())
	}

	// 5. Serve the index over HTTP and query it.
	handler, err := themecomm.NewQueryServer(reloaded, themecomm.QueryServerOptions{Dictionary: dict})
	if err != nil {
		t.Fatalf("NewQueryServer: %v", err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var stats struct {
		Nodes int `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Nodes != reloaded.NumNodes() {
		t.Fatalf("served stats report %d nodes, tree has %d", stats.Nodes, reloaded.NumNodes())
	}

	qresp, err := http.Get(srv.URL + "/api/v1/query?alpha=0.2")
	if err != nil {
		t.Fatalf("GET query: %v", err)
	}
	defer qresp.Body.Close()
	var queryAnswer struct {
		RetrievedNodes int `json:"retrievedNodes"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&queryAnswer); err != nil {
		t.Fatalf("decode query: %v", err)
	}
	if queryAnswer.RetrievedNodes != mined.NumPatterns() {
		t.Fatalf("served query retrieved %d trusses, miner found %d", queryAnswer.RetrievedNodes, mined.NumPatterns())
	}
}

func TestEndToEndRawCheckInLoading(t *testing.T) {
	// Load a tiny raw check-in dump (the SNAP format) through the public API
	// and mine it: the pipeline a user of the real Brightkite data follows.
	edges := strings.NewReader("0\t1\n0\t2\n1\t2\n")
	checkins := strings.NewReader(strings.Join([]string{
		"0\t2010-10-17T01:00:00Z\t0\t0\tbar",
		"0\t2010-10-17T02:00:00Z\t0\t0\tclub",
		"1\t2010-10-17T01:30:00Z\t0\t0\tbar",
		"1\t2010-10-17T03:00:00Z\t0\t0\tclub",
		"2\t2010-10-17T05:00:00Z\t0\t0\tbar",
		"2\t2010-10-17T06:00:00Z\t0\t0\tclub",
	}, "\n"))
	nw, dict, err := themecomm.LoadCheckIns(edges, checkins, themecomm.CheckInLoadOptions{})
	if err != nil {
		t.Fatalf("LoadCheckIns: %v", err)
	}
	bar, _ := dict.Lookup("bar")
	club, _ := dict.Lookup("club")
	comms := themecomm.FindThemeCommunities(nw, 0.5)
	found := false
	for _, c := range comms {
		if c.Pattern.Equal(themecomm.NewItemset(bar, club)) && len(c.Vertices()) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("the bar+club trio was not recovered: %v", comms)
	}
}

func TestEndToEndCitationArchiveLoading(t *testing.T) {
	archive := strings.NewReader(strings.Join([]string{
		"#*Graph Mining at Scale",
		"#@Alice;Bob;Carol",
		"#!We study scalable graph mining with truss decomposition for community detection.",
		"",
		"#*More Graph Mining",
		"#@Alice;Bob;Carol",
		"#!Truss decomposition enables scalable community detection in graph mining.",
		"",
	}, "\n"))
	res, err := themecomm.LoadCitationArchive(archive, themecomm.CoAuthorLoadOptions{})
	if err != nil {
		t.Fatalf("LoadCitationArchive: %v", err)
	}
	if res.Network.NumVertices() != 3 || res.Network.NumEdges() != 3 {
		t.Fatalf("co-author network wrong: %v", res.Network)
	}
	mining, ok := res.Keywords.Lookup("mining")
	if !ok {
		t.Fatalf("keyword 'mining' missing")
	}
	tr := themecomm.DetectMaximalPatternTruss(res.Network, themecomm.NewItemset(mining), 0.5)
	if tr.NumVertices() != 3 {
		t.Fatalf("the three co-authors should form a truss for 'mining': %v", tr)
	}
}
