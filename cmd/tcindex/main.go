// Command tcindex builds the TC-Tree index of a database network and writes
// it to disk, reporting the Table 3 metrics (indexing time, memory, #nodes).
//
// Usage:
//
//	tcindex -in bk.dbnet -out bk.tctree
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcindex: ")

	in := flag.String("in", "", "input database network file (required)")
	out := flag.String("out", "", "output TC-Tree file (defaults to <in>.tctree)")
	workers := flag.Int("workers", 0, "parallelism of the first tree level (0 = GOMAXPROCS)")
	maxDepth := flag.Int("maxdepth", 0, "maximum indexed pattern length (0 = unbounded)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = *in + ".tctree"
	}
	nw, _, err := themecomm.ReadNetworkFile(*in)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	tree := themecomm.BuildTree(nw, themecomm.TreeBuildOptions{Parallelism: *workers, MaxDepth: *maxDepth})
	elapsed := time.Since(start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	if err := tree.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %s -> %s\n", *in, path)
	fmt.Printf("  indexing time: %v\n", elapsed)
	fmt.Printf("  heap in use:   %.1f MB\n", float64(ms.HeapAlloc)/(1<<20))
	fmt.Printf("  #nodes:        %d (depth %d, max α %.4g)\n", tree.NumNodes(), tree.Depth(), tree.MaxAlpha())
}
