// Command tcindex builds the TC-Tree index of a database network and writes
// it to disk, reporting the Table 3 metrics (indexing time, memory, #nodes).
//
// The index is written in one (or both) of two formats: a single monolithic
// gob file (-out), or a sharded directory (-sharded) holding one gob file per
// top-level item plus an index.manifest, which tcserver and tcquery can serve
// lazily — loading only the shards a workload touches.
//
// Usage:
//
//	tcindex -in bk.dbnet -out bk.tctree
//	tcindex -in bk.dbnet -sharded bk.index
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcindex: ")

	in := flag.String("in", "", "input database network file (required)")
	out := flag.String("out", "", "output TC-Tree file (defaults to <in>.tctree when -sharded is not given)")
	sharded := flag.String("sharded", "", "output directory for the sharded index format (per-shard files + manifest)")
	workers := flag.Int("workers", 0, "parallelism of the first tree level (0 = GOMAXPROCS)")
	maxDepth := flag.Int("maxdepth", 0, "maximum indexed pattern length (0 = unbounded)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	path := *out
	if path == "" && *sharded == "" {
		path = *in + ".tctree"
	}
	nw, _, err := themecomm.ReadNetworkFile(*in)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	tree := themecomm.BuildTree(nw, themecomm.TreeBuildOptions{Parallelism: *workers, MaxDepth: *maxDepth})
	elapsed := time.Since(start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	if path != "" {
		if err := tree.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("indexed %s -> %s\n", *in, path)
	}
	if *sharded != "" {
		manifest, err := themecomm.WriteShardedTree(tree, *sharded)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("indexed %s -> %s (sharded: %d shards + manifest)\n", *in, *sharded, len(manifest.Shards))
	}
	fmt.Printf("  indexing time: %v\n", elapsed)
	fmt.Printf("  heap in use:   %.1f MB\n", float64(ms.HeapAlloc)/(1<<20))
	fmt.Printf("  #nodes:        %d (depth %d, max α %.4g)\n", tree.NumNodes(), tree.Depth(), tree.MaxAlpha())
}
