// Command tcindex builds the TC-Tree index of a database network and writes
// it to disk, reporting the Table 3 metrics (indexing time, memory, #nodes).
//
// The index is written in one (or both) of two layouts: a single monolithic
// gob file (-out), or a sharded directory (-sharded) holding one file per
// top-level item plus an index.manifest, which tcserver and tcquery can serve
// lazily — loading only the shards a workload touches. Sharded shards are
// encoded either as gob (the default; decoded whole into memory on load) or
// as TCBIN (-format tcbin; a flat binary layout served zero-copy from a
// memory-mapped file). An existing sharded index converts between the two
// encodings in place with -migrate.
//
// Usage:
//
//	tcindex -in bk.dbnet -out bk.tctree
//	tcindex -in bk.dbnet -sharded bk.index
//	tcindex -in bk.dbnet -sharded bk.index -format tcbin
//	tcindex -migrate bk.index -format tcbin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcindex: ")

	in := flag.String("in", "", "input database network file (required unless -migrate)")
	out := flag.String("out", "", "output TC-Tree file (defaults to <in>.tctree when -sharded is not given)")
	sharded := flag.String("sharded", "", "output directory for the sharded index format (per-shard files + manifest)")
	format := flag.String("format", "", "shard encoding of the sharded format: gob or tcbin (default gob, or $TC_INDEX_FORMAT)")
	migrate := flag.String("migrate", "", "re-encode an existing sharded index directory into -format in place, then exit")
	workers := flag.Int("workers", 0, "parallelism of the first tree level (0 = GOMAXPROCS)")
	maxDepth := flag.Int("maxdepth", 0, "maximum indexed pattern length (0 = unbounded)")
	flag.Parse()

	if *migrate != "" {
		if *format == "" {
			log.Fatal("-migrate needs -format (gob or tcbin)")
		}
		idx, err := themecomm.OpenShardedIndex(*migrate)
		if err != nil {
			log.Fatal(err)
		}
		from := idx.Format()
		start := time.Now()
		if err := themecomm.MigrateIndexFormat(idx, *format); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migrated %s: %s -> %s (%d shards, %v)\n",
			*migrate, from, idx.Format(), idx.NumShards(), time.Since(start))
		return
	}

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	path := *out
	if path == "" && *sharded == "" {
		path = *in + ".tctree"
	}
	nw, _, err := themecomm.ReadNetworkFile(*in)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	tree := themecomm.BuildTree(nw, themecomm.TreeBuildOptions{Parallelism: *workers, MaxDepth: *maxDepth})
	elapsed := time.Since(start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	if path != "" {
		if err := tree.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("indexed %s -> %s\n", *in, path)
	}
	if *sharded != "" {
		var manifest *themecomm.IndexManifest
		if *format != "" {
			manifest, err = themecomm.WriteShardedTreeAs(tree, *sharded, *format)
		} else {
			manifest, err = themecomm.WriteShardedTree(tree, *sharded)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("indexed %s -> %s (sharded: %d %s shards + manifest)\n",
			*in, *sharded, len(manifest.Shards), manifest.FormatName())
	}
	fmt.Printf("  indexing time: %v\n", elapsed)
	fmt.Printf("  heap in use:   %.1f MB\n", float64(ms.HeapAlloc)/(1<<20))
	fmt.Printf("  #nodes:        %d (depth %d, max α %.4g)\n", tree.NumNodes(), tree.Depth(), tree.MaxAlpha())
}
