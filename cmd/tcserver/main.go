// Command tcserver serves theme-community queries over HTTP from TC-Tree
// indexes built by tcindex. Both index formats load transparently: a
// monolithic .tctree file is read whole, while a sharded index directory
// (tcindex -sharded) is served lazily — a shard's file is only read on the
// first query that touches it, and -maxresident bounds how many shards stay
// in memory. Queries go through the engine's cost-based planner: shards
// whose α* bound proves an empty answer are skipped without a load,
// expensive shards are scheduled first, and a bounded background prefetcher
// (-prefetch) warms the schedule tail.
//
// With -networks the server fronts a whole federation of indexed networks:
// every sharded index directory and .tctree file inside the given directory
// becomes a named network (a sibling <name>.dbnet file provides its item
// dictionary), all sharing one result cache and one residency budget
// (-maxresident then bounds resident shards across ALL networks), queryable
// individually under /api/v1/{network}/... or together via /api/v1/queryall.
//
// Usage:
//
//	tcserver -tree bk.dbnet.tctree -net bk.dbnet -addr :8080 -workers 8 -cache 1024
//	tcserver -tree bk.index -maxresident 16        # lazy, sharded index dir
//	tcserver -networks warehouse/ -maxresident 64  # federation: every index in warehouse/
//	tcserver -networks warehouse/ -default bk      # single-network routes serve "bk"
//	tcserver -networks warehouse/ -journal wal/    # replication primary: journaled updates
//	tcserver -networks replica/ -replicaof http://primary:8080   # read-only replica
//
// With -journal the server is a replication primary: every update to a
// network with a database network is appended to a durable delta journal and
// applied in memory before the response; shard rebuilds fold in via a
// background checkpoint (-checkpoint). Replicas bootstrap from a file copy of
// the primary's networks directory, tail GET /api/v1/journal, replay each
// record through the same apply path, and serve reads; their writes answer
// 403 with a Location header naming the primary. See docs/ARCHITECTURE.md.
//
// Every request is traced: the server accepts a client X-Request-ID header
// (or assigns one), echoes it on the response, and stamps it on the JSON
// access log and the slow-query log, so one grep connects a client-reported
// query to its server-side trace. Prometheus metrics (HTTP, per-query
// latency/stage histograms, engine/cache/federation counters) are exposed at
// GET /metrics; queries slower than -slowquery are captured with their full
// plan at GET /api/v1/slowlog; -pprof serves net/http/pprof on a separate
// listener. See docs/OBSERVABILITY.md.
//
// Endpoints (see docs/API.md for request/response schemas):
//
//	GET  /healthz                           health: version, uptime, per-network readiness
//	GET  /metrics                           Prometheus text-format metrics
//	GET  /api/v1/slowlog                    slow-query ring buffer (-slowquery)
//	GET  /api/v1/stats                      index statistics
//	GET  /api/v1/query?alpha=0.5            query by cohesion threshold
//	GET  /api/v1/query?pattern=a,b&alpha=0  query by pattern
//	GET  /api/v1/query?alpha=0.2&k=10       top-k communities by cohesion
//	GET  /api/v1/explain?pattern=a,b&alpha=0  per-shard query plan + execution counters
//	POST /api/v1/batch                      many queries in one request
//	GET  /api/v1/enginestats                engine counters (shards, residency, cache, planner)
//	GET  /api/v1/patterns?length=2          list indexed patterns of a length
//	GET  /api/v1/vertex?id=7&alpha=0.2      theme communities containing a vertex
//	POST /api/v1/update                     apply a network delta in place (needs -net,
//	                                        or a sibling <name>.dbnet with -networks)
//	GET  /api/v1/networks                   list the federation's networks (-networks)
//	GET  /api/v1/{network}/query|explain|batch|enginestats|stats|patterns|vertex|update
//	GET  /api/v1/queryall?alpha=0.2&k=10    one query across every network, merged by cohesion
//	GET  /api/v1/federationstats            shared cache/budget state + per-network counters
//	GET  /api/v1/journal?from=0&wait=30     replication feed: journal records as NDJSON (-journal)
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"strings"
	"time"

	"themecomm"
	"themecomm/internal/client"
	"themecomm/internal/federation"
	"themecomm/internal/journal"
	"themecomm/internal/replication"
	"themecomm/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcserver: ")

	treePath := flag.String("tree", "", "TC-Tree file or sharded index directory built by tcindex")
	networksDir := flag.String("networks", "", "serve every indexed network found in this directory as a federation")
	defaultNetwork := flag.String("default", "", "federation network behind the single-network routes (default: lexically first)")
	netPath := flag.String("net", "", "database network file; enables item-name resolution (-tree only)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "shard-traversal parallelism (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1024, "result-cache entries, shared across networks with -networks (0 disables caching)")
	maxResident := flag.Int("maxresident", 0, "sharded indexes only: max shards kept in memory, across all networks with -networks (0 = unlimited)")
	maxResidentBytes := flag.Int64("maxresidentbytes", 0, "sharded indexes only: byte budget of resident shards, across all networks with -networks (0 = unlimited)")
	prefetch := flag.Int("prefetch", 0, "sharded indexes only: background shard-prefetch workers (0 = default, negative disables)")
	noPlanner := flag.Bool("noplanner", false, "disable the cost-based planner (no α* shard skipping, no cost ordering, no prefetch)")
	slowQuery := flag.Duration("slowquery", 0, "slow-query threshold: queries at least this slow are captured with their full plan into GET /api/v1/slowlog (0 disables)")
	slowlogSize := flag.Int("slowlogsize", 128, "slow-query ring-buffer capacity")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this SEPARATE address (e.g. localhost:6060); empty disables")
	journalDir := flag.String("journal", "", "replication primary: append every update to the delta journal in this directory (requires -networks)")
	replicaOf := flag.String("replicaof", "", "replica mode: serve read-only and tail the journal of the primary at this base URL (requires -networks)")
	checkpointEvery := flag.Duration("checkpoint", 0, "replication checkpoint cadence: how often journaled state is folded into the on-disk index (0 = 5s, negative disables)")
	quiet := flag.Bool("quiet", false, "suppress structured JSON logging (access log, slow-query warnings); metrics and the slow-query ring stay on")
	flag.Parse()

	if *treePath == "" && *networksDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	// One observer is shared by every layer: the engines record per-query
	// observations into it, the server layers HTTP metrics and request-ID
	// propagation over it, and GET /metrics renders its registry.
	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	observer := themecomm.NewObserver(themecomm.ObserverOptions{
		SlowThreshold: *slowQuery,
		SlowLogSize:   *slowlogSize,
		Logger:        logger,
	})

	opts := server.Options{DefaultNetwork: *defaultNetwork, Obs: observer}
	if *networksDir != "" {
		fed, err := themecomm.OpenFederation(*networksDir, themecomm.FederationOptions{
			Workers:           *workers,
			CacheSize:         *cacheSize,
			MaxResidentShards: *maxResident,
			MaxResidentBytes:  *maxResidentBytes,
			PrefetchWorkers:   *prefetch,
			DisablePlanner:    *noPlanner,
			Recorder:          observer,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts.Federation = fed
	}
	if *treePath != "" {
		eng, err := themecomm.OpenEngine(*treePath, themecomm.EngineOptions{
			Workers:           *workers,
			CacheSize:         *cacheSize,
			MaxResidentShards: *maxResident,
			MaxResidentBytes:  *maxResidentBytes,
			PrefetchWorkers:   *prefetch,
			DisablePlanner:    *noPlanner,
			Recorder:          observer,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts.Engine = eng
		if *netPath != "" {
			nw, dict, err := themecomm.ReadNetworkFile(*netPath)
			if err != nil {
				log.Fatal(err)
			}
			opts.Dictionary = dict
			if eng.Lazy() {
				// Holding the network enables POST /api/v1/update
				// (incremental index maintenance); the updated network is
				// written back so a restart reloads consistent state.
				opts.Network = nw
				opts.NetworkPath = *netPath
			} else {
				// A monolithic .tctree cannot be updated in place on disk;
				// applying deltas in memory while writing the network back
				// would desynchronize the two across a restart.
				log.Printf("monolithic index: POST /api/v1/update disabled (use the sharded format, tcindex -sharded)")
			}
		}
		mode := "eager"
		if eng.Lazy() {
			mode = "lazy"
		}
		log.Printf("serving %d indexed maximal pattern trusses (%s, format %s, %d shards, %d workers, cache %d)",
			eng.NumNodes(), mode, eng.Format(), eng.NumShards(), eng.Workers(), *cacheSize)
	}
	if opts.Federation != nil {
		names := opts.Federation.Names()
		log.Printf("federation of %d networks from %s: %s (shared cache %d, shared residency budget %d)",
			len(names), *networksDir, strings.Join(names, ", "), *cacheSize, *maxResident)
	}

	if *journalDir != "" && *replicaOf != "" {
		log.Fatal("-journal and -replicaof are mutually exclusive: a server is a primary or a replica, not both")
	}
	if *journalDir != "" {
		startPrimary(&opts, *journalDir, *checkpointEvery, logger)
	}
	if *replicaOf != "" {
		startReplica(&opts, *replicaOf, *checkpointEvery)
	}

	srv, err := server.New(nil, opts)
	if err != nil {
		log.Fatal(err)
	}

	// pprof gets its OWN listener (http.DefaultServeMux, where the blank
	// net/http/pprof import registered /debug/pprof/...), so profiling is
	// never exposed on the query-serving address.
	if *pprofAddr != "" {
		pprofLn, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listener: %v", err)
		}
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", pprofLn.Addr())
			if err := http.Serve(pprofLn, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	// Listen explicitly before serving so the bound address — the actual one,
	// not the requested one — is logged once the server is accepting. With
	// -addr :0 the kernel picks a free port, and scripts (e.g. the e2e smoke
	// harness) parse it from the "listening on" line instead of guessing
	// fixed ports.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("listening on %s", ln.Addr())
	if err := httpServer.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

// addMembers registers every federation network holding a database network
// with the replication role (primary or replica); networks without one are
// served but not replicated.
func addMembers(opts *server.Options, add func(*federation.Network) error, role string) int {
	added := 0
	for _, name := range opts.Federation.Names() {
		n, ok := opts.Federation.Network(name)
		if !ok {
			continue
		}
		if n.DatabaseNetwork() == nil {
			log.Printf("network %s has no database network (.dbnet); served but not replicated", name)
			continue
		}
		if err := add(n); err != nil {
			log.Fatalf("%s member %s: %v", role, name, err)
		}
		added++
	}
	if added == 0 {
		log.Fatalf("no replicable networks: %s mode needs a sibling <name>.dbnet next to each index", role)
	}
	return added
}

// startPrimary opens the delta journal, recovers any updates a crash left
// journaled-but-unflushed, and starts the background checkpoint loop. Updates
// to member networks then take the write-ahead fast path and the server
// serves the replication feed on GET /api/v1/journal.
func startPrimary(opts *server.Options, dir string, checkpointEvery time.Duration, logger *slog.Logger) {
	if opts.Federation == nil {
		log.Fatal("-journal requires -networks (the journal replicates a federation's networks)")
	}
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p := replication.NewPrimary(j, replication.PrimaryOptions{
		CheckpointInterval: checkpointEvery,
		Logger:             logger,
	})
	added := addMembers(opts, p.Add, "primary")
	stats, err := p.Recover()
	if err != nil {
		log.Fatalf("journal recovery: %v", err)
	}
	p.Start()
	opts.Primary = p
	log.Printf("replication primary: %d journaled networks, journal %s at seq %d (recovery replayed %d, skipped %d, resynced %d)",
		added, dir, stats.Head, stats.Replayed, stats.Skipped, len(stats.Resynced))
}

// startReplica marks the server read-only, registers the members, and starts
// the two replica loops: the journal tailer (long-polling the primary's feed
// and replaying each record) and the local checkpoint ticker. Replay failures
// are fail-stop — a replica that cannot follow the journal must not keep
// serving silently stale answers.
func startReplica(opts *server.Options, primaryURL string, checkpointEvery time.Duration) {
	if opts.Federation == nil {
		log.Fatal("-replicaof requires -networks (the replica serves a snapshot of the primary's networks)")
	}
	rep := replication.NewReplica()
	addMembers(opts, rep.Add, "replica")
	opts.ReadOnly = true
	opts.PrimaryURL = strings.TrimRight(primaryURL, "/")
	opts.ReplicationStatus = rep.Status

	from := rep.From()
	c := client.New(primaryURL, client.Options{})
	go func() {
		err := c.TailJournal(context.Background(), client.TailOptions{
			From:     from,
			OnRecord: func(rec journal.Record) error { return rep.ApplyRecord(&rec) },
			OnHead:   rep.ObserveHead,
		})
		log.Fatalf("journal tail stopped: %v", err)
	}()
	if checkpointEvery == 0 {
		checkpointEvery = replication.DefaultCheckpointInterval
	}
	if checkpointEvery > 0 {
		go func() {
			for range time.Tick(checkpointEvery) {
				if err := rep.Checkpoint(); err != nil {
					log.Printf("replica checkpoint: %v", err)
				}
			}
		}()
	}
	log.Printf("replica of %s: tailing the journal from seq %d (checkpoint every %v)", primaryURL, from, checkpointEvery)
}
