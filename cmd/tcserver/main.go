// Command tcserver serves theme-community queries over HTTP from a TC-Tree
// built by tcindex. Both index formats load transparently: a monolithic
// .tctree file is read whole, while a sharded index directory (tcindex
// -sharded) is served lazily — a shard's file is only read on the first query
// that touches it, and -maxresident bounds how many shards stay in memory.
// Queries go through the engine's cost-based planner: shards whose α* bound
// proves an empty answer are skipped without a load, expensive shards are
// scheduled first, and a bounded background prefetcher (-prefetch) warms the
// schedule tail.
//
// Usage:
//
//	tcserver -tree bk.dbnet.tctree -net bk.dbnet -addr :8080 -workers 8 -cache 1024
//	tcserver -tree bk.index -maxresident 16        # lazy, sharded index dir
//
// Endpoints (see docs/API.md for request/response schemas):
//
//	GET  /healthz                           liveness probe
//	GET  /api/v1/stats                      index statistics
//	GET  /api/v1/query?alpha=0.5            query by cohesion threshold
//	GET  /api/v1/query?pattern=a,b&alpha=0  query by pattern
//	GET  /api/v1/query?alpha=0.2&k=10       top-k communities by cohesion
//	GET  /api/v1/explain?pattern=a,b&alpha=0  per-shard query plan + execution counters
//	POST /api/v1/batch                      many queries in one request
//	GET  /api/v1/enginestats                engine counters (shards, residency, cache, planner)
//	GET  /api/v1/patterns?length=2          list indexed patterns of a length
//	GET  /api/v1/vertex?id=7&alpha=0.2      theme communities containing a vertex
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"themecomm"
	"themecomm/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcserver: ")

	treePath := flag.String("tree", "", "TC-Tree file or sharded index directory built by tcindex (required)")
	netPath := flag.String("net", "", "database network file; enables item-name resolution")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "shard-traversal parallelism (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1024, "result-cache entries (0 disables caching)")
	maxResident := flag.Int("maxresident", 0, "sharded index only: max shards kept in memory (0 = unlimited)")
	prefetch := flag.Int("prefetch", 0, "sharded index only: background shard-prefetch workers (0 = default, negative disables)")
	noPlanner := flag.Bool("noplanner", false, "disable the cost-based planner (no α* shard skipping, no cost ordering, no prefetch)")
	flag.Parse()

	if *treePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	eng, err := themecomm.OpenEngine(*treePath, themecomm.EngineOptions{
		Workers:           *workers,
		CacheSize:         *cacheSize,
		MaxResidentShards: *maxResident,
		PrefetchWorkers:   *prefetch,
		DisablePlanner:    *noPlanner,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := server.Options{Engine: eng}
	if *netPath != "" {
		_, dict, err := themecomm.ReadNetworkFile(*netPath)
		if err != nil {
			log.Fatal(err)
		}
		opts.Dictionary = dict
	}
	srv, err := server.New(eng.Tree(), opts)
	if err != nil {
		log.Fatal(err)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	mode := "eager"
	if eng.Lazy() {
		mode = "lazy"
	}
	log.Printf("serving %d indexed maximal pattern trusses on %s (%s, %d shards, %d workers, cache %d)",
		eng.NumNodes(), *addr, mode, eng.NumShards(), eng.Workers(), *cacheSize)
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
