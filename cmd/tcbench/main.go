// Command tcbench regenerates the tables and figures of the paper's
// evaluation (Section 7) on the generated dataset analogues and prints their
// rows. The query workloads (Figure 5 QBA/QBP and the case study) run
// through the serving engine's plan→execute path — the same code that
// answers tcserver and tcquery traffic — rather than a raw tree traversal,
// so the reported numbers reflect the served configuration (result cache
// disabled so repetitions measure execution, not cache hits). See DESIGN.md
// for the experiment index and EXPERIMENTS.md for a discussion of the
// measured shapes.
//
// Usage:
//
//	tcbench -exp all                 # everything, CI-scale
//	tcbench -exp fig3 -scale 0.5     # Figure 3 at a larger scale
//	tcbench -exp table3 -full        # paper-like settings (slow)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"themecomm/internal/experiments"
	"themecomm/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcbench: ")

	exp := flag.String("exp", "all", "experiment to run: table2, fig3, fig4, table3, fig5a, fig5b, case or all")
	scale := flag.Float64("scale", 0, "dataset scale factor (0 = the experiment default)")
	full := flag.Bool("full", false, "use paper-like settings: larger datasets, full α grid (slow)")
	maxLen := flag.Int("maxlen", 0, "maximum pattern length for the miners (0 = the experiment default)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *full {
		cfg.Scale = 1.0
		cfg.MiningSampleEdges = map[string]int{"BK": 10000, "GW": 10000, "AMINER": 5000}
		cfg.EdgeBudgets = []int{1000, 3000, 10000, 30000, 100000}
		cfg.QueriesPerPoint = 100
	}
	if *scale > 0 {
		cfg.Scale = gen.Scale(*scale)
	}
	if *maxLen > 0 {
		cfg.MaxPatternLength = *maxLen
	}

	suite := experiments.NewSuite(cfg)
	out := os.Stdout
	run := strings.ToLower(*exp)
	want := func(name string) bool { return run == "all" || run == name }
	ran := false

	if want("table2") {
		ran = true
		fmt.Fprintln(out, "== Table 2: dataset statistics ==")
		rows, err := suite.Table2()
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteTable2(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if want("fig3") {
		ran = true
		fmt.Fprintln(out, "== Figure 3: effect of α and ε (Time, NP, NV, NE) ==")
		rows, err := suite.Figure3()
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteFigure3(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if want("fig4") {
		ran = true
		fmt.Fprintln(out, "== Figure 4: scalability with #sampled edges (α = 0) ==")
		rows, err := suite.Figure4()
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteFigure4(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if want("table3") {
		ran = true
		fmt.Fprintln(out, "== Table 3: TC-Tree indexing performance ==")
		rows, err := suite.Table3()
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteTable3(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if want("fig5a") {
		ran = true
		fmt.Fprintln(out, "== Figure 5(a)-(d): query by alpha ==")
		rows, err := suite.Figure5QBA()
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteFigure5(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if want("fig5b") {
		ran = true
		fmt.Fprintln(out, "== Figure 5(e)-(h): query by pattern ==")
		rows, err := suite.Figure5QBP()
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteFigure5(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if want("case") {
		ran = true
		fmt.Fprintln(out, "== Table 4 / Figure 6: case study (co-author analogue) ==")
		comms, err := suite.CaseStudy(6)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteCaseStudy(out, comms); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if !ran {
		log.Fatalf("unknown experiment %q (want table2, fig3, fig4, table3, fig5a, fig5b, case or all)", *exp)
	}
}
