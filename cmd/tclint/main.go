// Command tclint runs themecomm's project-specific static-analysis suite
// (internal/lint): stdlib-only analyzers that machine-check the repository's
// architectural invariants — import layering, the fsync+rename atomic-write
// idiom, the writeError response envelope, I/O-free update-lock critical
// sections, and context propagation. See docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	tclint [-list] [packages]
//
// Packages follow go-tool patterns ("./...", "internal/engine", "cmd/...");
// the default is "./..." from the enclosing module root. Findings print as
// "file:line:col: [analyzer] message" and make the exit status nonzero.
// Suppress a deliberate exception with a `//lint:ignore <analyzer> <reason>`
// comment on the flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"themecomm/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tclint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, modulePath, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, modulePath, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		f.Pos.Filename = relTo(root, f.Pos.Filename)
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// relTo shortens a filename to be root-relative when possible.
func relTo(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return name
}
