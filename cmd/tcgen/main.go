// Command tcgen generates a synthetic database network — one of the paper's
// dataset analogues (BK, GW, AMINER, SYN) — and writes it in the text format
// understood by the other tools.
//
// Usage:
//
//	tcgen -dataset BK -scale 0.5 -out bk.dbnet
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcgen: ")

	dataset := flag.String("dataset", "BK", "dataset analogue to generate: BK, GW, AMINER or SYN")
	scale := flag.Float64("scale", 0.25, "scale factor relative to the generator defaults")
	out := flag.String("out", "", "output file (defaults to <dataset>.dbnet)")
	flag.Parse()

	if *scale <= 0 {
		log.Fatal("-scale must be positive")
	}
	path := *out
	if path == "" {
		path = *dataset + ".dbnet"
	}

	d, err := themecomm.GenerateDataset(*dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if err := themecomm.WriteNetworkFile(path, d.Network, d.Dictionary); err != nil {
		log.Fatal(err)
	}
	st := d.Network.Stats()
	fmt.Fprintf(os.Stdout, "wrote %s: |V|=%d |E|=%d transactions=%d items(total)=%d items(unique)=%d\n",
		path, st.Vertices, st.Edges, st.Transactions, st.ItemsTotal, st.ItemsUnique)
}
