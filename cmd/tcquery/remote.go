package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"themecomm/internal/client"
	"themecomm/internal/server"
)

// runRemote answers the query against a running tcserver over HTTP instead of
// opening an index locally: -server gives the base URL, -network scopes the
// query to one federation tenant, and -requestid injects a correlation ID
// that the server echoes and stamps on its access/slow-query logs. The typed
// API client (internal/client) does the wire work — request-ID plumbing,
// retry-on-5xx for these idempotent reads, and the JSON error envelope — so
// a failure prints the server-assigned request ID and can be found in the
// server's logs with one grep.
func runRemote(base, network, pattern string, alphaQ float64, topK, top int, explain, contains bool, requestID string, stream bool, cursor string, limit int) {
	if explain && (stream || cursor != "" || limit > 0) {
		log.Fatal("-explain cannot be combined with -stream, -cursor or -limit")
	}
	c := client.New(base, client.Options{RequestID: requestID})
	q := client.Query{
		Network:  network,
		Pattern:  pattern,
		Alpha:    alphaQ,
		Contains: contains,
		Cursor:   cursor,
		Limit:    limit,
	}
	if topK > 0 && !explain {
		q.K = topK
	}
	ctx := context.Background()

	if explain {
		rep, _, err := c.Explain(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Network != "" {
			fmt.Printf("network %s\n", rep.Network)
		}
		printExplainReport(rep.ExplainReport)
		return
	}

	if stream {
		runRemoteStream(ctx, c, q, base)
		return
	}

	qr, serverID, err := c.Do(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query answered in %dµs by %s (request id %s): %d maximal pattern trusses (visited %d nodes)\n",
		qr.QueryMicros, base, serverID, qr.RetrievedNodes, qr.VisitedNodes)
	if qr.TopK > 0 {
		fmt.Printf("top %d theme communities by cohesion\n", len(qr.Communities))
		for i, c := range qr.Communities {
			fmt.Printf("  [%d] cohesion=%.4g theme={%s} vertices=%v\n",
				i+1, c.Cohesion, strings.Join(c.Theme, ", "), c.Vertices)
		}
		printNextCursor(qr.NextCursor)
		return
	}
	fmt.Printf("%d theme communities\n", len(qr.Communities))
	show := top
	if show <= 0 || show > len(qr.Communities) {
		show = len(qr.Communities)
	}
	for i := 0; i < show; i++ {
		c := qr.Communities[i]
		fmt.Printf("  [%d] theme={%s} vertices=%v\n", i+1, strings.Join(c.Theme, ", "), c.Vertices)
	}
	if show < len(qr.Communities) {
		fmt.Printf("  ... %d more (raise -top to see them)\n", len(qr.Communities)-show)
	}
	printNextCursor(qr.NextCursor)
}

// printNextCursor tells the user how to fetch the next page of a paginated
// answer.
func printNextCursor(cursor string) {
	if cursor != "" {
		fmt.Printf("more communities remain; next page: -cursor %s\n", cursor)
	}
}

// runRemoteStream consumes the NDJSON streaming answer through the client,
// printing each community as the server produces it. The trailer carries the
// execution counters (and the next-page cursor under -limit); an in-band
// error aborts with its status — 410 means the index moved mid-stream and
// the query should simply be re-issued.
func runRemoteStream(ctx context.Context, c *client.Client, q client.Query, base string) {
	i := 0
	_, err := c.Stream(ctx, q, client.StreamHandler{
		Header: func(h server.StreamHeader) {
			label := "streaming communities"
			if h.TopK > 0 {
				label = fmt.Sprintf("streaming top %d communities by cohesion", h.TopK)
			}
			fmt.Printf("%s from %s\n", label, base)
		},
		Community: func(sc server.StreamCommunity) error {
			i++
			line := fmt.Sprintf("  [%d]", i)
			if sc.Network != "" {
				line += fmt.Sprintf(" network=%s", sc.Network)
			}
			if sc.Cohesion > 0 {
				line += fmt.Sprintf(" cohesion=%.4g", sc.Cohesion)
			}
			fmt.Printf("%s theme={%s} vertices=%v\n", line, strings.Join(sc.Theme, ", "), sc.Vertices)
			return nil
		},
		Trailer: func(tr server.StreamTrailer) {
			fmt.Printf("stream complete in %dµs: %d communities", tr.QueryMicros, tr.Emitted)
			if tr.RetrievedNodes > 0 || tr.VisitedNodes > 0 {
				fmt.Printf(" (%d trusses retrieved, %d nodes visited)", tr.RetrievedNodes, tr.VisitedNodes)
			}
			if tr.ShardsShortCircuited > 0 {
				fmt.Printf("; %d shards short-circuited by top-k early termination", tr.ShardsShortCircuited)
			}
			fmt.Println()
			printNextCursor(tr.NextCursor)
		},
	})
	if err != nil {
		log.Fatalf("stream failed: %v", err)
	}
}
