package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"themecomm"
	"themecomm/internal/server"
)

// runRemote answers the query against a running tcserver over HTTP instead of
// opening an index locally: -server gives the base URL, -network scopes the
// query to one federation tenant, and -requestid injects a correlation ID
// that the server echoes and stamps on its access/slow-query logs. On a
// server error the server-assigned request ID is printed with the message, so
// the failure can be found in the server's logs with one grep.
func runRemote(base, network, pattern string, alphaQ float64, topK, top int, explain, contains bool, requestID string, stream bool, cursor string, limit int) {
	if explain && (stream || cursor != "" || limit > 0) {
		log.Fatal("-explain cannot be combined with -stream, -cursor or -limit")
	}
	route := "query"
	if explain {
		route = "explain"
	}
	path := "/api/v1/" + route
	if network != "" {
		path = "/api/v1/" + url.PathEscape(network) + "/" + route
	}
	params := url.Values{}
	if cursor != "" {
		// The cursor carries the query (pattern, alpha, k); sending it alone
		// avoids any ambiguity with conflicting parameters.
		params.Set("cursor", cursor)
	} else {
		params.Set("alpha", strconv.FormatFloat(alphaQ, 'g', -1, 64))
		if pattern != "" {
			params.Set("pattern", pattern)
		}
		if topK > 0 && !explain {
			params.Set("k", strconv.Itoa(topK))
		}
		if contains {
			params.Set("contains", "true")
		}
	}
	if stream {
		params.Set("stream", "1")
	}
	if limit > 0 {
		params.Set("limit", strconv.Itoa(limit))
	}
	full := strings.TrimSuffix(base, "/") + path + "?" + params.Encode()

	req, err := http.NewRequest(http.MethodGet, full, nil)
	if err != nil {
		log.Fatalf("invalid -server URL: %v", err)
	}
	if requestID != "" {
		req.Header.Set(themecomm.RequestIDHeader, requestID)
	}
	// No client timeout when streaming: the body arrives as long as the
	// server produces it.
	client := &http.Client{Timeout: 60 * time.Second}
	if stream {
		client.Timeout = 0
	}
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("GET %s: %v", full, err)
	}
	defer resp.Body.Close()

	if stream && resp.StatusCode == http.StatusOK {
		runRemoteStream(resp, base)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		log.Fatalf("reading response: %v", err)
	}

	// The server assigns (or echoes) the request ID on every response; on
	// failure it is the handle into the server-side access and slow-query
	// logs.
	serverID := resp.Header.Get(themecomm.RequestIDHeader)
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		log.Fatalf("server error (HTTP %d, request id %s): %s", resp.StatusCode, serverID, msg)
	}

	if explain {
		var rep server.ExplainResponse
		if err := json.Unmarshal(body, &rep); err != nil {
			log.Fatalf("decoding explain response: %v", err)
		}
		if rep.Network != "" {
			fmt.Printf("network %s\n", rep.Network)
		}
		printExplainReport(rep.ExplainReport)
		return
	}

	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		log.Fatalf("decoding query response: %v", err)
	}
	fmt.Printf("query answered in %dµs by %s (request id %s): %d maximal pattern trusses (visited %d nodes)\n",
		qr.QueryMicros, base, serverID, qr.RetrievedNodes, qr.VisitedNodes)
	if qr.TopK > 0 {
		fmt.Printf("top %d theme communities by cohesion\n", len(qr.Communities))
		for i, c := range qr.Communities {
			fmt.Printf("  [%d] cohesion=%.4g theme={%s} vertices=%v\n",
				i+1, c.Cohesion, strings.Join(c.Theme, ", "), c.Vertices)
		}
		printNextCursor(qr.NextCursor)
		return
	}
	fmt.Printf("%d theme communities\n", len(qr.Communities))
	show := top
	if show <= 0 || show > len(qr.Communities) {
		show = len(qr.Communities)
	}
	for i := 0; i < show; i++ {
		c := qr.Communities[i]
		fmt.Printf("  [%d] theme={%s} vertices=%v\n", i+1, strings.Join(c.Theme, ", "), c.Vertices)
	}
	if show < len(qr.Communities) {
		fmt.Printf("  ... %d more (raise -top to see them)\n", len(qr.Communities)-show)
	}
	printNextCursor(qr.NextCursor)
}

// printNextCursor tells the user how to fetch the next page of a paginated
// answer.
func printNextCursor(cursor string) {
	if cursor != "" {
		fmt.Printf("more communities remain; next page: -cursor %s\n", cursor)
	}
}

// runRemoteStream consumes an NDJSON streaming response line by line,
// printing each community as the server produces it. A trailer line carries
// the execution counters (and the next-page cursor under -limit); an error
// line aborts with the in-band status — 410 means the index moved mid-stream
// and the query should simply be re-issued.
func runRemoteStream(resp *http.Response, base string) {
	serverID := resp.Header.Get(themecomm.RequestIDHeader)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	i := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			log.Fatalf("invalid stream line: %v", err)
		}
		switch kind.Type {
		case "header":
			var h server.StreamHeader
			if err := json.Unmarshal(line, &h); err != nil {
				log.Fatalf("invalid stream header: %v", err)
			}
			label := "streaming communities"
			if h.TopK > 0 {
				label = fmt.Sprintf("streaming top %d communities by cohesion", h.TopK)
			}
			fmt.Printf("%s from %s (request id %s)\n", label, base, serverID)
		case "community":
			var c server.StreamCommunity
			if err := json.Unmarshal(line, &c); err != nil {
				log.Fatalf("invalid stream community: %v", err)
			}
			i++
			line := fmt.Sprintf("  [%d]", i)
			if c.Network != "" {
				line += fmt.Sprintf(" network=%s", c.Network)
			}
			if c.Cohesion > 0 {
				line += fmt.Sprintf(" cohesion=%.4g", c.Cohesion)
			}
			fmt.Printf("%s theme={%s} vertices=%v\n", line, strings.Join(c.Theme, ", "), c.Vertices)
		case "trailer":
			var tr server.StreamTrailer
			if err := json.Unmarshal(line, &tr); err != nil {
				log.Fatalf("invalid stream trailer: %v", err)
			}
			fmt.Printf("stream complete in %dµs: %d communities", tr.QueryMicros, tr.Emitted)
			if tr.RetrievedNodes > 0 || tr.VisitedNodes > 0 {
				fmt.Printf(" (%d trusses retrieved, %d nodes visited)", tr.RetrievedNodes, tr.VisitedNodes)
			}
			if tr.ShardsShortCircuited > 0 {
				fmt.Printf("; %d shards short-circuited by top-k early termination", tr.ShardsShortCircuited)
			}
			fmt.Println()
			printNextCursor(tr.NextCursor)
			return
		case "error":
			var se server.StreamError
			if err := json.Unmarshal(line, &se); err != nil {
				log.Fatalf("invalid stream error: %v", err)
			}
			log.Fatalf("stream failed (HTTP %d, request id %s): %s", se.Status, serverID, se.Error)
		default:
			log.Fatalf("unknown stream line type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading stream: %v", err)
	}
	log.Fatal("stream ended without a trailer")
}
