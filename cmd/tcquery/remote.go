package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"themecomm"
	"themecomm/internal/server"
)

// runRemote answers the query against a running tcserver over HTTP instead of
// opening an index locally: -server gives the base URL, -network scopes the
// query to one federation tenant, and -requestid injects a correlation ID
// that the server echoes and stamps on its access/slow-query logs. On a
// server error the server-assigned request ID is printed with the message, so
// the failure can be found in the server's logs with one grep.
func runRemote(base, network, pattern string, alphaQ float64, topK, top int, explain bool, requestID string) {
	route := "query"
	if explain {
		route = "explain"
	}
	path := "/api/v1/" + route
	if network != "" {
		path = "/api/v1/" + url.PathEscape(network) + "/" + route
	}
	params := url.Values{}
	params.Set("alpha", strconv.FormatFloat(alphaQ, 'g', -1, 64))
	if pattern != "" {
		params.Set("pattern", pattern)
	}
	if topK > 0 && !explain {
		params.Set("k", strconv.Itoa(topK))
	}
	full := strings.TrimSuffix(base, "/") + path + "?" + params.Encode()

	req, err := http.NewRequest(http.MethodGet, full, nil)
	if err != nil {
		log.Fatalf("invalid -server URL: %v", err)
	}
	if requestID != "" {
		req.Header.Set(themecomm.RequestIDHeader, requestID)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("GET %s: %v", full, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		log.Fatalf("reading response: %v", err)
	}

	// The server assigns (or echoes) the request ID on every response; on
	// failure it is the handle into the server-side access and slow-query
	// logs.
	serverID := resp.Header.Get(themecomm.RequestIDHeader)
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		log.Fatalf("server error (HTTP %d, request id %s): %s", resp.StatusCode, serverID, msg)
	}

	if explain {
		var rep server.ExplainResponse
		if err := json.Unmarshal(body, &rep); err != nil {
			log.Fatalf("decoding explain response: %v", err)
		}
		if rep.Network != "" {
			fmt.Printf("network %s\n", rep.Network)
		}
		printExplainReport(rep.ExplainReport)
		return
	}

	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		log.Fatalf("decoding query response: %v", err)
	}
	fmt.Printf("query answered in %dµs by %s (request id %s): %d maximal pattern trusses (visited %d nodes)\n",
		qr.QueryMicros, base, serverID, qr.RetrievedNodes, qr.VisitedNodes)
	if qr.TopK > 0 {
		fmt.Printf("top %d theme communities by cohesion\n", len(qr.Communities))
		for i, c := range qr.Communities {
			fmt.Printf("  [%d] cohesion=%.4g theme={%s} vertices=%v\n",
				i+1, c.Cohesion, strings.Join(c.Theme, ", "), c.Vertices)
		}
		return
	}
	fmt.Printf("%d theme communities\n", len(qr.Communities))
	limit := top
	if limit <= 0 || limit > len(qr.Communities) {
		limit = len(qr.Communities)
	}
	for i := 0; i < limit; i++ {
		c := qr.Communities[i]
		fmt.Printf("  [%d] theme={%s} vertices=%v\n", i+1, strings.Join(c.Theme, ", "), c.Vertices)
	}
	if limit < len(qr.Communities) {
		fmt.Printf("  ... %d more (raise -top to see them)\n", len(qr.Communities)-limit)
	}
}
