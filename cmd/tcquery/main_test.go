package main

import (
	"testing"

	"themecomm"
)

func TestParsePatternNumeric(t *testing.T) {
	got, err := parsePattern("3, 1,2", nil)
	if err != nil {
		t.Fatalf("parsePattern: %v", err)
	}
	if !got.Equal(themecomm.NewItemset(1, 2, 3)) {
		t.Fatalf("parsePattern = %v", got)
	}
}

func TestParsePatternNames(t *testing.T) {
	dict := themecomm.NewDictionary()
	a := dict.Intern("data mining")
	b := dict.Intern("graphs")
	got, err := parsePattern("data mining,graphs", dict)
	if err != nil {
		t.Fatalf("parsePattern: %v", err)
	}
	if !got.Equal(themecomm.NewItemset(a, b)) {
		t.Fatalf("parsePattern = %v", got)
	}
	// Mixed numeric and named items.
	got, err = parsePattern("0,graphs", dict)
	if err != nil {
		t.Fatalf("parsePattern: %v", err)
	}
	if !got.Equal(themecomm.NewItemset(a, b)) {
		t.Fatalf("mixed parse = %v", got)
	}
}

func TestParsePatternErrors(t *testing.T) {
	if _, err := parsePattern("", nil); err == nil {
		t.Fatalf("empty pattern should fail")
	}
	if _, err := parsePattern(" , ", nil); err == nil {
		t.Fatalf("blank pattern should fail")
	}
	if _, err := parsePattern("beer", nil); err == nil {
		t.Fatalf("named item without a dictionary should fail")
	}
	dict := themecomm.NewDictionary()
	if _, err := parsePattern("unknown item", dict); err == nil {
		t.Fatalf("unknown name should fail")
	}
}
