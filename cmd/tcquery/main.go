// Command tcquery answers theme-community queries against a TC-Tree built by
// tcindex: query by cohesion threshold (QBA), by pattern (QBP), or both.
// Queries run through the sharded engine; -topk ranks the answer by cohesion.
// Both index formats load transparently; against a sharded index directory
// (tcindex -sharded) only the shards the query pattern touches are read from
// disk, so single-pattern queries skip most of the index.
//
// Usage:
//
//	tcquery -tree bk.dbnet.tctree -alpha 0.5
//	tcquery -tree bk.index -net bk.dbnet -pattern "hangout-c3-0,hangout-c3-1" -alpha 0.2
//	tcquery -tree bk.dbnet.tctree -alpha 0.2 -topk 10 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcquery: ")

	treePath := flag.String("tree", "", "TC-Tree file or sharded index directory built by tcindex (required)")
	netPath := flag.String("net", "", "database network file; needed to resolve item names in -pattern")
	alphaQ := flag.Float64("alpha", 0, "query cohesion threshold α_q")
	pattern := flag.String("pattern", "", "comma-separated query pattern (item names or numeric ids); empty = all items")
	top := flag.Int("top", 20, "number of communities to print (0 = all)")
	topK := flag.Int("topk", 0, "rank communities by cohesion then size and keep the k best (0 = plain query)")
	workers := flag.Int("workers", 0, "shard-traversal parallelism (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "result-cache entries (0 disables caching)")
	flag.Parse()

	if *treePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	eng, err := themecomm.OpenEngine(*treePath, themecomm.EngineOptions{Workers: *workers, CacheSize: *cacheSize})
	if err != nil {
		log.Fatal(err)
	}

	var dict *themecomm.Dictionary
	if *netPath != "" {
		_, d, err := themecomm.ReadNetworkFile(*netPath)
		if err != nil {
			log.Fatal(err)
		}
		dict = d
	}

	// nil query pattern = every item (query by alpha).
	var q themecomm.Itemset
	if *pattern != "" {
		q, err = parsePattern(*pattern, dict)
		if err != nil {
			log.Fatal(err)
		}
	}

	themeOf := func(p themecomm.Itemset) string {
		if dict != nil && dict.Len() > 0 {
			return strings.Join(dict.Names(p), ", ")
		}
		return p.String()
	}

	if *topK > 0 {
		qr, ranked, err := eng.TopKWithResult(q, *alphaQ, *topK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query answered in %v: %d maximal pattern trusses (visited %d nodes)\n",
			qr.Duration, qr.RetrievedNodes, qr.VisitedNodes)
		fmt.Printf("top %d theme communities by cohesion\n", len(ranked))
		for i, rc := range ranked {
			fmt.Printf("  [%d] cohesion=%.4g theme={%s} vertices=%v\n",
				i+1, rc.Cohesion, themeOf(rc.Community.Pattern), rc.Community.Vertices())
		}
		return
	}

	qr, err := eng.Query(q, *alphaQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query answered in %v: %d maximal pattern trusses (visited %d nodes)\n",
		qr.Duration, qr.RetrievedNodes, qr.VisitedNodes)
	comms := qr.Communities()
	fmt.Printf("%d theme communities\n", len(comms))
	limit := *top
	if limit <= 0 || limit > len(comms) {
		limit = len(comms)
	}
	for i := 0; i < limit; i++ {
		c := comms[i]
		fmt.Printf("  [%d] theme={%s} vertices=%v\n", i+1, themeOf(c.Pattern), c.Vertices())
	}
	if limit < len(comms) {
		fmt.Printf("  ... %d more (raise -top to see them)\n", len(comms)-limit)
	}
}

// parsePattern turns a comma-separated list of item names or numeric ids into
// an itemset, resolving names through the dictionary when one is available.
func parsePattern(s string, dict *themecomm.Dictionary) (themecomm.Itemset, error) {
	var items []themecomm.Item
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if id, err := strconv.Atoi(field); err == nil {
			items = append(items, themecomm.Item(id))
			continue
		}
		if dict == nil {
			return nil, fmt.Errorf("item %q is not numeric and no -net file was given to resolve names", field)
		}
		id, ok := dict.Lookup(field)
		if !ok {
			return nil, fmt.Errorf("unknown item name %q", field)
		}
		items = append(items, id)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty query pattern %q", s)
	}
	return themecomm.NewItemset(items...), nil
}
