// Command tcquery answers theme-community queries against a TC-Tree built by
// tcindex: query by cohesion threshold (QBA), by pattern (QBP), or both.
//
// Usage:
//
//	tcquery -tree bk.dbnet.tctree -alpha 0.5
//	tcquery -tree bk.dbnet.tctree -net bk.dbnet -pattern "hangout-c3-0,hangout-c3-1" -alpha 0.2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcquery: ")

	treePath := flag.String("tree", "", "TC-Tree file built by tcindex (required)")
	netPath := flag.String("net", "", "database network file; needed to resolve item names in -pattern")
	alphaQ := flag.Float64("alpha", 0, "query cohesion threshold α_q")
	pattern := flag.String("pattern", "", "comma-separated query pattern (item names or numeric ids); empty = all items")
	top := flag.Int("top", 20, "number of communities to print (0 = all)")
	flag.Parse()

	if *treePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	tree, err := themecomm.ReadTreeFile(*treePath)
	if err != nil {
		log.Fatal(err)
	}

	var dict *themecomm.Dictionary
	if *netPath != "" {
		_, d, err := themecomm.ReadNetworkFile(*netPath)
		if err != nil {
			log.Fatal(err)
		}
		dict = d
	}

	var qr *themecomm.QueryResult
	if *pattern == "" {
		qr = tree.QueryByAlpha(*alphaQ)
	} else {
		q, err := parsePattern(*pattern, dict)
		if err != nil {
			log.Fatal(err)
		}
		qr = tree.Query(q, *alphaQ)
	}

	fmt.Printf("query answered in %v: %d maximal pattern trusses (visited %d nodes)\n",
		qr.Duration, qr.RetrievedNodes, qr.VisitedNodes)
	comms := qr.Communities()
	fmt.Printf("%d theme communities\n", len(comms))
	limit := *top
	if limit <= 0 || limit > len(comms) {
		limit = len(comms)
	}
	for i := 0; i < limit; i++ {
		c := comms[i]
		theme := c.Pattern.String()
		if dict != nil && dict.Len() > 0 {
			theme = strings.Join(dict.Names(c.Pattern), ", ")
		}
		fmt.Printf("  [%d] theme={%s} vertices=%v\n", i+1, theme, c.Vertices())
	}
	if limit < len(comms) {
		fmt.Printf("  ... %d more (raise -top to see them)\n", len(comms)-limit)
	}
}

// parsePattern turns a comma-separated list of item names or numeric ids into
// an itemset, resolving names through the dictionary when one is available.
func parsePattern(s string, dict *themecomm.Dictionary) (themecomm.Itemset, error) {
	var items []themecomm.Item
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if id, err := strconv.Atoi(field); err == nil {
			items = append(items, themecomm.Item(id))
			continue
		}
		if dict == nil {
			return nil, fmt.Errorf("item %q is not numeric and no -net file was given to resolve names", field)
		}
		id, ok := dict.Lookup(field)
		if !ok {
			return nil, fmt.Errorf("unknown item name %q", field)
		}
		items = append(items, id)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty query pattern %q", s)
	}
	return themecomm.NewItemset(items...), nil
}
