// Command tcquery answers theme-community queries against a TC-Tree built by
// tcindex: query by cohesion threshold (QBA), by pattern (QBP), or both.
// Queries run through the engine's cost-based planner: shards whose α* bound
// proves an empty answer at α_q are skipped from catalogue metadata alone,
// and -topk ranks the answer by cohesion. -contains flips the query to
// containment semantics — retrieve the indexed patterns that contain the
// query pattern — where the catalogue's per-shard bloom filters and α-depth
// histograms skip shards that cannot hold a superset. All index layouts load
// transparently (monolithic gob, sharded gob, sharded TCBIN); against a
// sharded index directory (tcindex -sharded) only the shards the query
// touches — and the planner cannot skip — are read from disk. -explain prints the per-shard plan (skip/resident/load decisions,
// cost-ordered schedule) and the observed execution counters instead of the
// communities; -noplanner disables the planner for comparison.
//
// Against a networks directory (the layout tcserver -networks serves:
// several indexes side by side), -network selects which indexed network to
// query; the network's sibling <name>.dbnet file, when present, resolves
// item names automatically.
//
// With -server the query is answered by a running tcserver over HTTP instead
// of opening an index locally: -network picks the federation tenant,
// -requestid injects an X-Request-ID the server echoes and stamps on its
// access/slow-query logs, and on a server error the server-assigned request
// ID is printed with the message so the failure can be grepped out of the
// server's logs.
//
// Usage:
//
//	tcquery -tree bk.dbnet.tctree -alpha 0.5
//	tcquery -tree bk.index -net bk.dbnet -pattern "hangout-c3-0,hangout-c3-1" -alpha 0.2
//	tcquery -tree bk.dbnet.tctree -alpha 0.2 -topk 10 -workers 8
//	tcquery -tree bk.index -alpha 0.4 -explain
//	tcquery -tree bk.index -pattern "hangout-c3-0" -alpha 0.2 -contains
//	tcquery -tree warehouse/ -network bk -alpha 0.2
//	tcquery -server http://localhost:8080 -alpha 0.2 -topk 5
//	tcquery -server http://localhost:8080 -network bk -alpha 0.2 -requestid probe-1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcquery: ")

	treePath := flag.String("tree", "", "TC-Tree file, sharded index directory, or networks directory (required)")
	network := flag.String("network", "", "network to query when -tree is a networks directory holding several indexes")
	netPath := flag.String("net", "", "database network file; needed to resolve item names in -pattern")
	alphaQ := flag.Float64("alpha", 0, "query cohesion threshold α_q")
	pattern := flag.String("pattern", "", "comma-separated query pattern (item names or numeric ids); empty = all items")
	top := flag.Int("top", 20, "number of communities to print (0 = all)")
	topK := flag.Int("topk", 0, "rank communities by cohesion then size and keep the k best (0 = plain query)")
	workers := flag.Int("workers", 0, "shard-traversal parallelism (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "result-cache entries (0 disables caching)")
	contains := flag.Bool("contains", false, "containment query: answer with the indexed patterns that CONTAIN -pattern (supersets) instead of the sub-patterns it contains")
	explain := flag.Bool("explain", false, "print the query plan and execution counters instead of the communities")
	noPlanner := flag.Bool("noplanner", false, "disable the cost-based planner (no α* shard skipping, no cost ordering, no prefetch)")
	serverURL := flag.String("server", "", "query a running tcserver at this base URL (e.g. http://localhost:8080) instead of opening an index")
	requestID := flag.String("requestid", "", "X-Request-ID to send with -server; the server echoes it and stamps it on its logs")
	stream := flag.Bool("stream", false, "with -server: stream the answer as it is produced (NDJSON) instead of waiting for the full response")
	cursor := flag.String("cursor", "", "with -server: resume a paginated answer from this cursor (printed by a previous -limit run)")
	limitFlag := flag.Int("limit", 0, "with -server: page size; the response carries a cursor when more communities remain (0 = no limit)")
	flag.Parse()

	if *contains && (*topK > 0 || *stream || *cursor != "" || *limitFlag > 0) {
		log.Fatal("-contains answers are not rankable or pageable; drop -topk, -stream, -cursor and -limit")
	}
	if *serverURL != "" {
		runRemote(*serverURL, *network, *pattern, *alphaQ, *topK, *top, *explain, *contains, *requestID,
			*stream, *cursor, *limitFlag)
		return
	}
	if *stream || *cursor != "" || *limitFlag > 0 {
		log.Fatal("-stream, -cursor and -limit need -server (streaming is an HTTP API feature)")
	}
	if *treePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	indexPath := resolveNetwork(*treePath, *network, netPath)
	eng, err := themecomm.OpenEngine(indexPath, themecomm.EngineOptions{
		Workers:        *workers,
		CacheSize:      *cacheSize,
		DisablePlanner: *noPlanner,
	})
	if err != nil {
		log.Fatal(err)
	}

	var dict *themecomm.Dictionary
	if *netPath != "" {
		_, d, err := themecomm.ReadNetworkFile(*netPath)
		if err != nil {
			log.Fatal(err)
		}
		dict = d
	}

	// nil query pattern = every item (query by alpha).
	var q themecomm.Itemset
	if *pattern != "" {
		q, err = parsePattern(*pattern, dict)
		if err != nil {
			log.Fatal(err)
		}
	}

	themeOf := func(p themecomm.Itemset) string {
		if dict != nil && dict.Len() > 0 {
			return strings.Join(dict.Names(p), ", ")
		}
		return p.String()
	}

	if *explain {
		printExplain(eng, q, *alphaQ, *contains)
		return
	}

	if *topK > 0 {
		qr, ranked, err := eng.TopKWithResult(q, *alphaQ, *topK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query answered in %v: %d maximal pattern trusses (visited %d nodes)\n",
			qr.Duration, qr.RetrievedNodes, qr.VisitedNodes)
		fmt.Printf("top %d theme communities by cohesion\n", len(ranked))
		for i, rc := range ranked {
			fmt.Printf("  [%d] cohesion=%.4g theme={%s} vertices=%v\n",
				i+1, rc.Cohesion, themeOf(rc.Community.Pattern), rc.Community.Vertices())
		}
		return
	}

	var qr *themecomm.QueryResult
	if *contains {
		qr, err = eng.QueryContaining(q, *alphaQ)
	} else {
		qr, err = eng.Query(q, *alphaQ)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query answered in %v: %d maximal pattern trusses (visited %d nodes)\n",
		qr.Duration, qr.RetrievedNodes, qr.VisitedNodes)
	comms := qr.Communities()
	fmt.Printf("%d theme communities\n", len(comms))
	limit := *top
	if limit <= 0 || limit > len(comms) {
		limit = len(comms)
	}
	for i := 0; i < limit; i++ {
		c := comms[i]
		fmt.Printf("  [%d] theme={%s} vertices=%v\n", i+1, themeOf(c.Pattern), c.Vertices())
	}
	if limit < len(comms) {
		fmt.Printf("  ... %d more (raise -top to see them)\n", len(comms)-limit)
	}
}

// resolveNetwork maps -tree/-network onto one index path. A .tctree file or
// sharded index directory passes through untouched; a networks directory
// (several indexes side by side, as served by tcserver -networks) resolves
// through -network — required unless the directory holds exactly one
// network — and supplies the network's sibling .dbnet dictionary when -net
// was not given.
func resolveNetwork(treePath, network string, netPath *string) string {
	st, err := os.Stat(treePath)
	if err != nil || !st.IsDir() || themecomm.IsShardedIndex(treePath) {
		if network != "" {
			log.Fatalf("-network %s needs -tree to be a networks directory, not an index", network)
		}
		return treePath
	}
	nets, err := themecomm.DiscoverNetworks(treePath)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(nets))
	for i, d := range nets {
		names[i] = d.Name
	}
	var pick *themecomm.DiscoveredNetwork
	switch {
	case network != "":
		for i := range nets {
			if nets[i].Name == network {
				pick = &nets[i]
				break
			}
		}
		if pick == nil {
			log.Fatalf("no network %q in %s (available: %s)", network, treePath, strings.Join(names, ", "))
		}
	case len(nets) == 1:
		pick = &nets[0]
	default:
		log.Fatalf("%s holds %d networks; pick one with -network (available: %s)", treePath, len(nets), strings.Join(names, ", "))
	}
	if *netPath == "" {
		*netPath = pick.NetworkPath
	}
	return pick.IndexPath
}

// printExplain runs the query through Engine.Explain (or ExplainContaining
// with -contains) and prints the per-shard decisions, the cost-ordered
// schedule and the post-execution counters.
func printExplain(eng *themecomm.Engine, q themecomm.Itemset, alphaQ float64, contains bool) {
	var rep *themecomm.EngineExplain
	var err error
	if contains {
		rep, err = eng.ExplainContaining(q, alphaQ)
	} else {
		rep, err = eng.Explain(q, alphaQ)
	}
	if err != nil {
		log.Fatal(err)
	}
	printExplainReport(rep)
}

// printExplainReport renders one plan + execution report (local or fetched
// from a server with -server -explain).
func printExplainReport(rep *themecomm.EngineExplain) {
	pattern := "every item (query by alpha)"
	if !rep.Full {
		pattern = rep.Pattern.String()
	}
	mode := "planner on"
	if !rep.Planner {
		mode = "planner off"
	}
	if rep.Mode != "" {
		mode = string(rep.Mode) + ", " + mode
	}
	fmt.Printf("plan for pattern %s at α_q=%g (%s, %d workers, lazy=%v)\n",
		pattern, rep.Alpha, mode, rep.Workers, rep.Lazy)
	fmt.Printf("%d shards: %d load, %d resident, %d skipped by α*, %d not in query; est. cost %.0f\n",
		rep.Shards, rep.LoadTasks, rep.ResidentTasks, rep.SkippedAlpha, rep.SkippedAbsent, rep.TotalCost)
	if rep.SkippedBloom > 0 || rep.SkippedHist > 0 {
		fmt.Printf("catalogue skips: %d by item bloom filter, %d by α-depth histogram\n",
			rep.SkippedBloom, rep.SkippedHist)
	}
	if len(rep.ScheduleOrder) > 0 {
		order := make([]string, len(rep.ScheduleOrder))
		for i, it := range rep.ScheduleOrder {
			order[i] = strconv.Itoa(int(it))
		}
		label := "most expensive first"
		if !rep.Planner {
			label = "ascending root item"
		}
		fmt.Printf("schedule (%s): %s\n", label, strings.Join(order, ", "))
	}
	for _, task := range rep.Tasks {
		line := fmt.Sprintf("  shard %-6d %-11s nodes=%-6d α*=%-8.4g cost=%-8.0f", task.Item, task.Decision, task.Nodes, task.MaxAlpha, task.Cost)
		if !task.Decision.Skipped() {
			line += fmt.Sprintf(" %4dµs visited=%d trusses=%d", task.Micros, task.Visited, task.Trusses)
			if task.Loaded {
				line += " (loaded)"
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("executed in %dµs: %d trusses retrieved, %d nodes visited; loads=%d prefetched=%d\n",
		rep.Micros, rep.RetrievedNodes, rep.VisitedNodes, rep.Loaded, rep.Prefetched)
}

// parsePattern turns a comma-separated list of item names or numeric ids into
// an itemset, resolving names through the dictionary when one is available.
func parsePattern(s string, dict *themecomm.Dictionary) (themecomm.Itemset, error) {
	var items []themecomm.Item
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if id, err := strconv.Atoi(field); err == nil {
			items = append(items, themecomm.Item(id))
			continue
		}
		if dict == nil {
			return nil, fmt.Errorf("item %q is not numeric and no -net file was given to resolve names", field)
		}
		id, ok := dict.Lookup(field)
		if !ok {
			return nil, fmt.Errorf("unknown item name %q", field)
		}
		items = append(items, id)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty query pattern %q", s)
	}
	return themecomm.NewItemset(items...), nil
}
