// Command tcupdate incrementally maintains a sharded TC-Tree index after its
// database network changes: it applies a network delta (added/removed edges,
// added transactions, new vertices) to the network file, rebuilds only the
// index shards the delta can affect, commits them with a single durable
// manifest write, and writes the updated network back — no full re-index.
//
// The delta comes from a delta file (see internal/delta for the TCDELTA text
// format), from the command-line flags, or both:
//
//	tcupdate -net bk.dbnet -index bk.index -delta changes.tcdelta
//	tcupdate -net bk.dbnet -index bk.index -addedges 3-17,4-17 -addtx "17:coffee,tea"
//	tcupdate -net bk.dbnet -index bk.index -rmedges 3-4 -outnet bk-next.dbnet
//
// Flags -addedges and -rmedges take comma-separated u-v vertex pairs;
// -addtx takes semicolon-separated vertex:item,item,... transactions whose
// items are names (resolved — and, for new items, interned — through the
// network's dictionary) or numeric identifiers. A server holding the same
// index must be told to reload (or run its own update via POST
// /api/v1/update, which does all of this in one step).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"themecomm"
	"themecomm/internal/delta"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcupdate: ")

	netPath := flag.String("net", "", "database network file the index was built from (required)")
	indexPath := flag.String("index", "", "sharded index directory built by tcindex -sharded (required)")
	deltaPath := flag.String("delta", "", "delta file in the TCDELTA text format")
	addVertices := flag.Int("addvertices", 0, "number of new vertices to add")
	addEdges := flag.String("addedges", "", "edges to add, comma-separated u-v pairs (e.g. 3-17,4-17)")
	rmEdges := flag.String("rmedges", "", "edges to remove, comma-separated u-v pairs")
	addTx := flag.String("addtx", "", "transactions to add, semicolon-separated vertex:item,item,... entries")
	outNet := flag.String("outnet", "", "write the updated network here (default: overwrite -net)")
	flag.Parse()

	if *netPath == "" || *indexPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	nw, dict, err := themecomm.ReadNetworkFile(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	if dict != nil {
		// Cover the whole item universe before interning delta item names,
		// so a new name can never alias an existing unnamed item.
		if items := nw.Items(); items.Len() > 0 {
			dict.PadTo(int(items.Last()) + 1)
		}
	}
	d := &delta.Delta{AddVertices: *addVertices}
	if *deltaPath != "" {
		fromFile, err := delta.ReadFile(*deltaPath, dict)
		if err != nil {
			log.Fatal(err)
		}
		d.AddVertices += fromFile.AddVertices
		d.AddEdges = append(d.AddEdges, fromFile.AddEdges...)
		d.RemoveEdges = append(d.RemoveEdges, fromFile.RemoveEdges...)
		d.AddTransactions = append(d.AddTransactions, fromFile.AddTransactions...)
	}
	if d.AddEdges, err = appendEdges(d.AddEdges, *addEdges); err != nil {
		log.Fatalf("-addedges: %v", err)
	}
	if d.RemoveEdges, err = appendEdges(d.RemoveEdges, *rmEdges); err != nil {
		log.Fatalf("-rmedges: %v", err)
	}
	if d.AddTransactions, err = appendTransactions(d.AddTransactions, *addTx, dict); err != nil {
		log.Fatalf("-addtx: %v", err)
	}
	if d.Empty() {
		log.Fatal("empty delta: give -delta, -addvertices, -addedges, -rmedges or -addtx")
	}

	idx, err := themecomm.OpenShardedIndex(*indexPath)
	if err != nil {
		log.Fatal(err)
	}
	affected := delta.AffectedItems(nw, d)
	start := time.Now()
	if err := delta.Apply(nw, d); err != nil {
		log.Fatal(err)
	}
	report, err := idx.ApplyDelta(nw, affected)
	if err != nil {
		log.Fatal(err)
	}
	out := *outNet
	if out == "" {
		out = *netPath
	}
	if err := themecomm.WriteNetworkFileAtomic(out, nw, dict); err != nil {
		log.Fatalf("index updated but network write-back failed: %v", err)
	}
	fmt.Printf("applied %s to %s in %v\n", d, *indexPath, time.Since(start).Round(time.Microsecond))
	fmt.Printf("  affected items:  %d of %d shards (%d replaced, %d added, %d removed)\n",
		affected.Len(), idx.NumShards(), len(report.Replaced), len(report.Added), len(report.Removed))
	fmt.Printf("  network:         %s (|V|=%d, |E|=%d)\n", out, nw.NumVertices(), nw.NumEdges())
}

// appendEdges parses a comma-separated list of u-v pairs.
func appendEdges(edges []graph.Edge, raw string) ([]graph.Edge, error) {
	for _, field := range strings.Split(raw, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		u, v, ok := strings.Cut(field, "-")
		if !ok {
			return nil, fmt.Errorf("edge %q is not a u-v pair", field)
		}
		a, err1 := strconv.Atoi(strings.TrimSpace(u))
		b, err2 := strconv.Atoi(strings.TrimSpace(v))
		if err1 != nil || err2 != nil || a == b ||
			a < 0 || a > math.MaxInt32 || b < 0 || b > math.MaxInt32 {
			return nil, fmt.Errorf("invalid edge %q", field)
		}
		edges = append(edges, graph.EdgeOf(graph.VertexID(a), graph.VertexID(b)))
	}
	return edges, nil
}

// appendTransactions parses semicolon-separated vertex:item,item,... entries.
func appendTransactions(txs []delta.VertexTransaction, raw string, dict *itemset.Dictionary) ([]delta.VertexTransaction, error) {
	for _, field := range strings.Split(raw, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		vs, rest, ok := strings.Cut(field, ":")
		if !ok {
			return nil, fmt.Errorf("transaction %q is not a vertex:items entry", field)
		}
		v, err := strconv.Atoi(strings.TrimSpace(vs))
		if err != nil || v < 0 || v > math.MaxInt32 {
			return nil, fmt.Errorf("invalid vertex in %q", field)
		}
		var items []itemset.Item
		for _, name := range strings.Split(rest, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			it, err := delta.ResolveItem(name, dict)
			if err != nil {
				return nil, err
			}
			items = append(items, it)
		}
		if len(items) == 0 {
			return nil, fmt.Errorf("transaction %q has no items", field)
		}
		txs = append(txs, delta.VertexTransaction{Vertex: graph.VertexID(v), Tx: itemset.New(items...)})
	}
	return txs, nil
}
