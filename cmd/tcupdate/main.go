// Command tcupdate incrementally maintains a TC-Tree index after its
// database network changes: it applies a network delta (added/removed edges,
// added/removed transactions, new or tombstoned vertices) to the network
// file, rebuilds only the index shards the delta can affect, commits them
// with a single durable manifest write, and writes the updated network back —
// no full re-index.
//
// The delta comes from a delta file (see internal/delta for the TCDELTA text
// format), from the command-line flags, or both:
//
//	tcupdate -net bk.dbnet -index bk.index -delta changes.tcdelta
//	tcupdate -net bk.dbnet -index bk.index -addedges 3-17,4-17 -addtx "17:coffee,tea"
//	tcupdate -net bk.dbnet -index bk.index -rmedges 3-4 -outnet bk-next.dbnet
//
// With -server the delta is instead POSTed to a running tcserver, which does
// the same maintenance in one step against its live index (and, on a
// replication primary, journals the delta for its replicas):
//
//	tcupdate -server http://localhost:8080 -network bk -addedges 3-17 -addtx "17:coffee"
//
// Flags -addedges and -rmedges take comma-separated u-v vertex pairs;
// -addtx and -rmtx take semicolon-separated vertex:item,item,... transactions
// whose items are names (resolved — and, for new items, interned — through
// the network's dictionary) or numeric identifiers; -rmvertices takes
// comma-separated vertex ids to tombstone.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"themecomm"
	"themecomm/internal/client"
	"themecomm/internal/delta"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcupdate: ")

	netPath := flag.String("net", "", "database network file the index was built from (required unless -server)")
	indexPath := flag.String("index", "", "sharded index directory built by tcindex -sharded (required unless -server)")
	deltaPath := flag.String("delta", "", "delta file in the TCDELTA text format")
	addVertices := flag.Int("addvertices", 0, "number of new vertices to add")
	addEdges := flag.String("addedges", "", "edges to add, comma-separated u-v pairs (e.g. 3-17,4-17)")
	rmEdges := flag.String("rmedges", "", "edges to remove, comma-separated u-v pairs")
	addTx := flag.String("addtx", "", "transactions to add, semicolon-separated vertex:item,item,... entries")
	rmTx := flag.String("rmtx", "", "transactions to remove, semicolon-separated vertex:item,item,... entries")
	rmVertices := flag.String("rmvertices", "", "vertices to tombstone, comma-separated ids")
	outNet := flag.String("outnet", "", "write the updated network here (default: overwrite -net)")
	serverURL := flag.String("server", "", "POST the delta to the tcserver at this base URL instead of updating a local index")
	network := flag.String("network", "", "federation network to update (with -server)")
	requestID := flag.String("requestid", "", "correlation ID sent with the remote update (with -server)")
	flag.Parse()

	if *serverURL != "" {
		runRemoteUpdate(*serverURL, *network, *requestID, *deltaPath, *addVertices,
			*addEdges, *rmEdges, *addTx, *rmTx, *rmVertices)
		return
	}

	if *netPath == "" || *indexPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	nw, dict, err := themecomm.ReadNetworkFile(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	if dict != nil {
		// Cover the whole item universe before interning delta item names,
		// so a new name can never alias an existing unnamed item.
		if items := nw.Items(); items.Len() > 0 {
			dict.PadTo(int(items.Last()) + 1)
		}
	}
	d := &delta.Delta{AddVertices: *addVertices}
	if *deltaPath != "" {
		fromFile, err := delta.ReadFile(*deltaPath, dict)
		if err != nil {
			log.Fatal(err)
		}
		d.AddVertices += fromFile.AddVertices
		d.AddEdges = append(d.AddEdges, fromFile.AddEdges...)
		d.RemoveEdges = append(d.RemoveEdges, fromFile.RemoveEdges...)
		d.AddTransactions = append(d.AddTransactions, fromFile.AddTransactions...)
		d.RemoveTransactions = append(d.RemoveTransactions, fromFile.RemoveTransactions...)
		d.RemoveVertices = append(d.RemoveVertices, fromFile.RemoveVertices...)
	}
	if d.AddEdges, err = appendEdges(d.AddEdges, *addEdges); err != nil {
		log.Fatalf("-addedges: %v", err)
	}
	if d.RemoveEdges, err = appendEdges(d.RemoveEdges, *rmEdges); err != nil {
		log.Fatalf("-rmedges: %v", err)
	}
	if d.AddTransactions, err = appendTransactions(d.AddTransactions, *addTx, dict); err != nil {
		log.Fatalf("-addtx: %v", err)
	}
	if d.RemoveTransactions, err = appendTransactions(d.RemoveTransactions, *rmTx, dict); err != nil {
		log.Fatalf("-rmtx: %v", err)
	}
	if d.RemoveVertices, err = appendVertices(d.RemoveVertices, *rmVertices); err != nil {
		log.Fatalf("-rmvertices: %v", err)
	}
	if d.Empty() {
		log.Fatal("empty delta: give -delta, -addvertices, -addedges, -rmedges, -addtx, -rmtx or -rmvertices")
	}

	idx, err := themecomm.OpenShardedIndex(*indexPath)
	if err != nil {
		log.Fatal(err)
	}
	affected := delta.AffectedItems(nw, d)
	start := time.Now()
	if err := delta.Apply(nw, d); err != nil {
		log.Fatal(err)
	}
	report, err := idx.ApplyDelta(nw, affected)
	if err != nil {
		log.Fatal(err)
	}
	out := *outNet
	if out == "" {
		out = *netPath
	}
	if err := themecomm.WriteNetworkFileAtomic(out, nw, dict); err != nil {
		log.Fatalf("index updated but network write-back failed: %v", err)
	}
	fmt.Printf("applied %s to %s in %v\n", d, *indexPath, time.Since(start).Round(time.Microsecond))
	fmt.Printf("  affected items:  %d of %d shards (%d replaced, %d added, %d removed)\n",
		affected.Len(), idx.NumShards(), len(report.Replaced), len(report.Added), len(report.Removed))
	fmt.Printf("  network:         %s (|V|=%d, |E|=%d)\n", out, nw.NumVertices(), nw.NumEdges())
}

// runRemoteUpdate builds the update request from the flags and POSTs it
// through the typed API client. Item names travel as-is: the server resolves
// them through its own dictionary, exactly like a local run resolves them
// through the network file's.
func runRemoteUpdate(base, network, requestID, deltaPath string, addVertices int,
	addEdges, rmEdges, addTx, rmTx, rmVertices string) {
	if deltaPath != "" {
		log.Fatal("-delta cannot be combined with -server; pass the change through the flags")
	}
	req := &server.UpdateRequest{AddVertices: addVertices}
	var err error
	if req.AddEdges, err = appendEdgePairs(nil, addEdges); err != nil {
		log.Fatalf("-addedges: %v", err)
	}
	if req.RemoveEdges, err = appendEdgePairs(nil, rmEdges); err != nil {
		log.Fatalf("-rmedges: %v", err)
	}
	if req.AddTransactions, err = appendTxEntries(nil, addTx); err != nil {
		log.Fatalf("-addtx: %v", err)
	}
	if req.RemoveTransactions, err = appendTxEntries(nil, rmTx); err != nil {
		log.Fatalf("-rmtx: %v", err)
	}
	for _, field := range splitFields(rmVertices, ",") {
		v, err := strconv.Atoi(field)
		if err != nil || v < 0 || v > math.MaxInt32 {
			log.Fatalf("-rmvertices: invalid vertex %q", field)
		}
		req.RemoveVertices = append(req.RemoveVertices, v)
	}

	c := client.New(base, client.Options{RequestID: requestID})
	resp, err := c.Update(context.Background(), network, req)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Location != "" {
			log.Fatalf("%v\nretry against the primary: tcupdate -server %s", err, strings.TrimSuffix(apiErr.Location, "/api/v1/update"))
		}
		log.Fatal(err)
	}
	target := network
	if target == "" {
		target = base
	}
	fmt.Printf("applied delta to %s in %dµs (index epoch %d)\n", target, resp.UpdateMicros, resp.IndexEpoch)
	fmt.Printf("  affected items:  %v (%d replaced, %d added, %d removed shards)\n",
		resp.AffectedItems, resp.ReplacedShards, resp.AddedShards, resp.RemovedShards)
	if resp.JournalSeq > 0 {
		fmt.Printf("  journal seq:     %d (journaled on the primary; replicas will replay it)\n", resp.JournalSeq)
	}
	if resp.Warning != "" {
		fmt.Printf("  warning:         %s\n", resp.Warning)
	}
}

// splitFields splits and trims a separated list, dropping empties.
func splitFields(raw, sep string) []string {
	var out []string
	for _, field := range strings.Split(raw, sep) {
		if field = strings.TrimSpace(field); field != "" {
			out = append(out, field)
		}
	}
	return out
}

// parseEdgePair parses one u-v pair.
func parseEdgePair(field string) (int, int, error) {
	u, v, ok := strings.Cut(field, "-")
	if !ok {
		return 0, 0, fmt.Errorf("edge %q is not a u-v pair", field)
	}
	a, err1 := strconv.Atoi(strings.TrimSpace(u))
	b, err2 := strconv.Atoi(strings.TrimSpace(v))
	if err1 != nil || err2 != nil || a == b ||
		a < 0 || a > math.MaxInt32 || b < 0 || b > math.MaxInt32 {
		return 0, 0, fmt.Errorf("invalid edge %q", field)
	}
	return a, b, nil
}

// appendEdges parses a comma-separated list of u-v pairs into graph edges.
func appendEdges(edges []graph.Edge, raw string) ([]graph.Edge, error) {
	for _, field := range splitFields(raw, ",") {
		a, b, err := parseEdgePair(field)
		if err != nil {
			return nil, err
		}
		edges = append(edges, graph.EdgeOf(graph.VertexID(a), graph.VertexID(b)))
	}
	return edges, nil
}

// appendEdgePairs parses the same list into wire-format pairs.
func appendEdgePairs(edges [][2]int, raw string) ([][2]int, error) {
	for _, field := range splitFields(raw, ",") {
		a, b, err := parseEdgePair(field)
		if err != nil {
			return nil, err
		}
		edges = append(edges, [2]int{a, b})
	}
	return edges, nil
}

// appendVertices parses a comma-separated vertex id list.
func appendVertices(vs []graph.VertexID, raw string) ([]graph.VertexID, error) {
	for _, field := range splitFields(raw, ",") {
		v, err := strconv.Atoi(field)
		if err != nil || v < 0 || v > math.MaxInt32 {
			return nil, fmt.Errorf("invalid vertex %q", field)
		}
		vs = append(vs, graph.VertexID(v))
	}
	return vs, nil
}

// parseTxEntry parses one vertex:item,item,... entry into its vertex and raw
// item fields.
func parseTxEntry(field string) (int, []string, error) {
	vs, rest, ok := strings.Cut(field, ":")
	if !ok {
		return 0, nil, fmt.Errorf("transaction %q is not a vertex:items entry", field)
	}
	v, err := strconv.Atoi(strings.TrimSpace(vs))
	if err != nil || v < 0 || v > math.MaxInt32 {
		return 0, nil, fmt.Errorf("invalid vertex in %q", field)
	}
	items := splitFields(rest, ",")
	if len(items) == 0 {
		return 0, nil, fmt.Errorf("transaction %q has no items", field)
	}
	return v, items, nil
}

// appendTransactions parses semicolon-separated vertex:item,item,... entries,
// resolving items through the dictionary.
func appendTransactions(txs []delta.VertexTransaction, raw string, dict *itemset.Dictionary) ([]delta.VertexTransaction, error) {
	for _, field := range splitFields(raw, ";") {
		v, names, err := parseTxEntry(field)
		if err != nil {
			return nil, err
		}
		var items []itemset.Item
		for _, name := range names {
			it, err := delta.ResolveItem(name, dict)
			if err != nil {
				return nil, err
			}
			items = append(items, it)
		}
		txs = append(txs, delta.VertexTransaction{Vertex: graph.VertexID(v), Tx: itemset.New(items...)})
	}
	return txs, nil
}

// appendTxEntries parses the same entries into wire-format transactions,
// leaving item names for the server to resolve.
func appendTxEntries(txs []server.UpdateTransaction, raw string) ([]server.UpdateTransaction, error) {
	for _, field := range splitFields(raw, ";") {
		v, names, err := parseTxEntry(field)
		if err != nil {
			return nil, err
		}
		txs = append(txs, server.UpdateTransaction{Vertex: v, Items: names})
	}
	return txs, nil
}
