// Command tcfind mines the theme communities of a database network with one
// of the paper's algorithms (TCFI by default) and prints them.
//
// Usage:
//
//	tcfind -in bk.dbnet -alpha 0.2
//	tcfind -in bk.dbnet -alpha 0.2 -method tcs -epsilon 0.1
//	tcfind -friends brightkite_edges.txt -checkins brightkite_checkins.txt -alpha 0.2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcfind: ")

	in := flag.String("in", "", "input database network file (themecomm text format)")
	friends := flag.String("friends", "", "raw SNAP friendship edge list (use together with -checkins)")
	checkins := flag.String("checkins", "", "raw SNAP check-in log (use together with -friends)")
	alpha := flag.Float64("alpha", 0, "minimum cohesion threshold α")
	method := flag.String("method", "tcfi", "mining algorithm: tcfi, tcfa or tcs")
	epsilon := flag.Float64("epsilon", 0.1, "TCS pre-filter frequency threshold ε (tcs only)")
	maxLen := flag.Int("maxlen", 0, "maximum pattern length (0 = unbounded)")
	workers := flag.Int("workers", 0, "parallel candidate evaluation workers (0 or 1 = serial)")
	top := flag.Int("top", 20, "number of communities to print (0 = all)")
	flag.Parse()

	var (
		nw   *themecomm.Network
		dict *themecomm.Dictionary
		err  error
		src  string
	)
	switch {
	case *in != "":
		src = *in
		nw, dict, err = themecomm.ReadNetworkFile(*in)
	case *friends != "" && *checkins != "":
		src = *checkins
		nw, dict, err = loadRawCheckIns(*friends, *checkins)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	opts := themecomm.MiningOptions{Alpha: *alpha, Epsilon: *epsilon, MaxPatternLength: *maxLen, Parallelism: *workers}
	var res *themecomm.MiningResult
	switch strings.ToLower(*method) {
	case "tcfi":
		res = themecomm.MineTCFI(nw, opts)
	case "tcfa":
		res = themecomm.MineTCFA(nw, opts)
	case "tcs":
		res = themecomm.MineTCS(nw, opts)
	default:
		log.Fatalf("unknown method %q (want tcfi, tcfa or tcs)", *method)
	}

	fmt.Printf("%s on %s (α=%.3g): %d patterns, %d vertices, %d edges in %v (%d MPTD calls)\n",
		res.Stats.Algorithm, src, *alpha, res.NumPatterns(), res.NumVertices(), res.NumEdges(),
		res.Stats.Duration, res.Stats.MPTDCalls)
	fmt.Printf("summary: %s\n", res.Summarize())

	comms := res.Communities()
	fmt.Printf("%d theme communities\n", len(comms))
	limit := *top
	if limit <= 0 || limit > len(comms) {
		limit = len(comms)
	}
	for i := 0; i < limit; i++ {
		c := comms[i]
		theme := c.Pattern.String()
		if dict != nil && dict.Len() > 0 {
			theme = strings.Join(dict.Names(c.Pattern), ", ")
		}
		fmt.Printf("  [%d] theme={%s} vertices=%v\n", i+1, theme, c.Vertices())
	}
	if limit < len(comms) {
		fmt.Printf("  ... %d more (raise -top to see them)\n", len(comms)-limit)
	}
}

// loadRawCheckIns builds a database network from raw SNAP check-in dumps (the
// Brightkite/Gowalla format) using the default 2-day period grouping.
func loadRawCheckIns(friendsPath, checkinsPath string) (*themecomm.Network, *themecomm.Dictionary, error) {
	friendsFile, err := os.Open(friendsPath)
	if err != nil {
		return nil, nil, err
	}
	defer friendsFile.Close()
	checkinsFile, err := os.Open(checkinsPath)
	if err != nil {
		return nil, nil, err
	}
	defer checkinsFile.Close()
	return themecomm.LoadCheckIns(friendsFile, checkinsFile, themecomm.CheckInLoadOptions{})
}
