// Check-in example: the location-based social network scenario of the paper
// (Brightkite / Gowalla). The generator plants friend groups that repeatedly
// visit the same hangout locations; mining the database network recovers
// those groups together with the places that define them.
package main

import (
	"fmt"
	"log"
	"strings"

	"themecomm"
)

func main() {
	log.SetFlags(0)

	// Generate a small Brightkite-like check-in network.
	d, err := themecomm.GenerateDataset("BK", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Network.Stats()
	fmt.Printf("generated check-in network: %d users, %d friendships, %d check-in periods, %d places\n",
		st.Vertices, st.Edges, st.Transactions, st.ItemsUnique)

	// Mine groups of friends who frequently visit the same pair of places.
	res := themecomm.MineTCFI(d.Network, themecomm.MiningOptions{Alpha: 0.15, MaxPatternLength: 2})
	fmt.Printf("TCFI found %d maximal pattern trusses in %v\n", res.NumPatterns(), res.Stats.Duration)

	fmt.Println("friend groups that co-visit at least two places:")
	shown := 0
	for _, c := range res.Communities() {
		if c.Pattern.Len() < 2 || len(c.Vertices()) < 4 {
			continue
		}
		fmt.Printf("  places={%s} friends=%v\n",
			strings.Join(d.Dictionary.Names(c.Pattern), ", "), c.Vertices())
		shown++
		if shown >= 10 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (none at this α — lower it to see weaker groups)")
	}
}
