// Co-author example: the AMINER scenario and the paper's case study
// (Section 7.4). Authors are vertices, co-authorship defines edges, and every
// author's database holds the keyword sets of their papers. A theme community
// is a group of collaborators who share a research interest; the TC-Tree
// answers "who works together on X?" queries interactively.
package main

import (
	"fmt"
	"log"
	"strings"

	"themecomm"
)

func main() {
	log.SetFlags(0)

	d, err := themecomm.GenerateDataset("AMINER", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Network.Stats()
	fmt.Printf("generated co-author network: %d authors, %d co-author edges, %d papers\n",
		st.Vertices, st.Edges, st.Transactions)

	// Build the TC-Tree once; every subsequent query is interactive.
	tree := themecomm.BuildTree(d.Network, themecomm.TreeBuildOptions{MaxDepth: 4})
	fmt.Printf("TC-Tree: %d nodes, depth %d, max α %.3g\n", tree.NumNodes(), tree.Depth(), tree.MaxAlpha())

	// Query 1: research groups working on data mining + sequential patterns.
	query := d.Dictionary.InternAll([]string{"data mining", "sequential pattern", "intrusion detection"})
	answer := tree.Query(query, 0.1)
	fmt.Printf("\nquery %v at α=0.1 answered in %v (%d trusses)\n",
		d.Dictionary.Names(query), answer.Duration, answer.RetrievedNodes)
	printCommunities(answer.Communities(), d, 6)

	// Query 2: sweep α to see how the strongest communities persist.
	fmt.Println("\nquery-by-alpha sweep over the whole index:")
	for _, alpha := range []float64{0, 0.2, 0.5, 1.0} {
		qr := tree.QueryByAlpha(alpha)
		fmt.Printf("  α=%.1f: %d maximal pattern trusses (%v)\n", alpha, qr.RetrievedNodes, qr.Duration)
	}
}

func printCommunities(comms []themecomm.Community, d themecomm.Dataset, limit int) {
	shown := 0
	for _, c := range comms {
		if c.Pattern.Len() < 2 {
			continue
		}
		var authors []string
		for _, v := range c.Vertices() {
			authors = append(authors, d.AuthorNames[v])
		}
		fmt.Printf("  theme={%s}\n    %s\n",
			strings.Join(d.Dictionary.Names(c.Pattern), ", "), strings.Join(authors, ", "))
		shown++
		if shown >= limit {
			return
		}
	}
	if shown == 0 {
		fmt.Println("  (no multi-keyword communities at this α)")
	}
}
