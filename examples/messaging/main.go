// Messaging example: the edge database network extension (future work of the
// paper's Section 8, implemented here). In a messaging platform the
// interesting transactions live on the *edges*: every conversation between
// two users is a stream of messages whose topic keywords form transactions.
// An edge theme community is a tightly knit group whose pairwise
// conversations all keep coming back to the same topic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(21))

	dict := themecomm.NewDictionary()
	topics := map[string]themecomm.Itemset{
		"ski trip":   themecomm.NewItemset(dict.Intern("ski"), dict.Intern("chalet"), dict.Intern("weekend")),
		"startup":    themecomm.NewItemset(dict.Intern("funding"), dict.Intern("pitch"), dict.Intern("prototype")),
		"small talk": themecomm.NewItemset(dict.Intern("weather"), dict.Intern("lunch")),
	}

	// Three friend groups of 6; within a group every pair chats regularly.
	const groupSize, groups = 6, 3
	groupTopic := []string{"ski trip", "startup", "small talk"}
	nw := themecomm.NewEdgeNetwork(groupSize * groups)

	chat := func(a, b themecomm.VertexID, topic themecomm.Itemset) {
		// A conversation: several messages on the group topic, a bit of noise.
		for m := 0; m < 6; m++ {
			items := topic.Clone()
			if rng.Float64() < 0.3 {
				items = items.Add(dict.Intern("weather"))
			}
			if err := nw.AddInteraction(a, b, items); err != nil {
				log.Fatal(err)
			}
		}
		if err := nw.AddInteraction(a, b, themecomm.NewItemset(dict.Intern("lunch"))); err != nil {
			log.Fatal(err)
		}
	}
	for g := 0; g < groups; g++ {
		base := themecomm.VertexID(g * groupSize)
		topic := topics[groupTopic[g]]
		for i := 0; i < groupSize; i++ {
			for j := i + 1; j < groupSize; j++ {
				if rng.Float64() < 0.7 {
					chat(base+themecomm.VertexID(i), base+themecomm.VertexID(j), topic)
				}
			}
		}
	}
	// A few cross-group acquaintances who only exchange small talk.
	for i := 0; i < 6; i++ {
		a := themecomm.VertexID(rng.Intn(groupSize * groups))
		b := themecomm.VertexID(rng.Intn(groupSize * groups))
		if a != b {
			if err := nw.AddInteraction(a, b, themecomm.NewItemset(dict.Intern("weather"), dict.Intern("lunch"))); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("edge database network: %d users, %d conversation edges\n", nw.NumVertices(), nw.NumEdges())

	res := themecomm.MineEdgeThemeCommunities(nw, themecomm.EdgeMiningOptions{Alpha: 0.3, MaxPatternLength: 3})
	fmt.Printf("mined %d edge-pattern trusses in %v\n", res.NumPatterns(), res.Duration)

	fmt.Println("conversation circles with a shared multi-keyword topic:")
	for _, c := range res.Communities() {
		if c.Pattern.Len() < 2 || len(c.Vertices()) < 4 {
			continue
		}
		fmt.Printf("  topic=%v members=%v\n", dict.Names(c.Pattern), c.Vertices())
	}
}
