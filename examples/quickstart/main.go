// Quickstart: build a small database network by hand, mine its theme
// communities, and answer queries from a TC-Tree — the full workflow of the
// library in about sixty lines.
package main

import (
	"fmt"
	"log"

	"themecomm"
)

func main() {
	log.SetFlags(0)

	// The item universe: things people buy.
	dict := themecomm.NewDictionary()
	diapers := dict.Intern("diapers")
	beer := dict.Intern("beer")
	coffee := dict.Intern("coffee")

	// A database network: 6 people, their friendships, and what each of them
	// buys. Vertices 0-3 are a tight circle of friends who keep buying
	// diapers and beer together; 4 and 5 hang off the side.
	nw := themecomm.NewNetwork(6)
	edges := [][2]themecomm.VertexID{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // the circle (a clique)
		{3, 4}, {4, 5}, // a tail
	}
	for _, e := range edges {
		nw.MustAddEdge(e[0], e[1])
	}
	buy := func(v themecomm.VertexID, times int, items ...themecomm.Item) {
		for i := 0; i < times; i++ {
			if err := nw.AddTransaction(v, themecomm.NewItemset(items...)); err != nil {
				log.Fatal(err)
			}
		}
	}
	for v := themecomm.VertexID(0); v < 4; v++ {
		buy(v, 4, diapers, beer)
		buy(v, 1, coffee)
	}
	buy(4, 5, coffee)
	buy(5, 5, coffee)

	// Mine every theme community with cohesion threshold α = 0.5.
	communities := themecomm.FindThemeCommunities(nw, 0.5)
	fmt.Printf("found %d theme communities at α=0.5\n", len(communities))
	for _, c := range communities {
		fmt.Printf("  theme=%v members=%v\n", dict.Names(c.Pattern), c.Vertices())
	}

	// The same answer can be served from the TC-Tree index without re-mining,
	// for any α and any query pattern.
	tree := themecomm.BuildTree(nw, themecomm.TreeBuildOptions{})
	fmt.Printf("TC-Tree indexes %d maximal pattern trusses (max α %.2f)\n", tree.NumNodes(), tree.MaxAlpha())

	answer := tree.Query(themecomm.NewItemset(diapers, beer), 0.5)
	fmt.Printf("query {diapers, beer} at α=0.5 answered in %v:\n", answer.Duration)
	for _, c := range answer.Communities() {
		fmt.Printf("  theme=%v members=%v\n", dict.Names(c.Pattern), c.Vertices())
	}
}
