// Social e-commerce example: the motivating scenario of the paper's
// introduction. Every user of a social shopping platform is a vertex whose
// transaction database records their purchase baskets; friendships are edges.
// Theme communities are social circles that share a dominant buying habit —
// exactly the groups a marketer would target with one campaign.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"themecomm"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(7))

	dict := themecomm.NewDictionary()
	// Product catalogue, grouped into the buying habits we plant.
	habits := map[string][]themecomm.Item{
		"new parents":   dict.InternAll([]string{"diapers", "baby formula", "wet wipes"}),
		"home baristas": dict.InternAll([]string{"espresso beans", "milk frother"}),
		"pc gamers":     dict.InternAll([]string{"graphics card", "mechanical keyboard", "headset"}),
	}
	catalogue := dict.InternAll([]string{
		"toothpaste", "batteries", "notebook", "umbrella", "socks", "charger", "water bottle",
	})

	// 60 users in three friend circles of 20, with a few cross-circle ties.
	const usersPerCircle, circles = 20, 3
	nw := themecomm.NewNetwork(usersPerCircle * circles)
	circleOf := func(v themecomm.VertexID) int { return int(v) / usersPerCircle }
	for c := 0; c < circles; c++ {
		base := themecomm.VertexID(c * usersPerCircle)
		// Each circle is a sparse but triangle-rich friend graph.
		for i := 0; i < usersPerCircle; i++ {
			for j := i + 1; j < usersPerCircle; j++ {
				if rng.Float64() < 0.35 {
					nw.MustAddEdge(base+themecomm.VertexID(i), base+themecomm.VertexID(j))
				}
			}
		}
	}
	for i := 0; i < 10; i++ {
		a := themecomm.VertexID(rng.Intn(usersPerCircle * circles))
		b := themecomm.VertexID(rng.Intn(usersPerCircle * circles))
		if a != b && circleOf(a) != circleOf(b) {
			nw.MustAddEdge(a, b)
		}
	}

	habitNames := []string{"new parents", "home baristas", "pc gamers"}
	for v := themecomm.VertexID(0); int(v) < usersPerCircle*circles; v++ {
		habit := habits[habitNames[circleOf(v)]]
		for basket := 0; basket < 12; basket++ {
			var items []themecomm.Item
			if rng.Float64() < 0.55 {
				items = append(items, habit...)
			}
			for i := 0; i < 1+rng.Intn(2); i++ {
				items = append(items, catalogue[rng.Intn(len(catalogue))])
			}
			if err := nw.AddTransaction(v, themecomm.NewItemset(items...)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Mine the buying-habit communities. The habit patterns have length up to
	// three, so we cap the search there.
	res := themecomm.MineTCFI(nw, themecomm.MiningOptions{Alpha: 0.3, MaxPatternLength: 3})
	fmt.Printf("mined %d maximal pattern trusses in %v\n", res.NumPatterns(), res.Stats.Duration)

	fmt.Println("campaign-sized theme communities (theme length >= 2, at least 8 members):")
	for _, c := range res.Communities() {
		if c.Pattern.Len() < 2 || len(c.Vertices()) < 8 {
			continue
		}
		fmt.Printf("  %-55s %2d members\n", strings.Join(dict.Names(c.Pattern), " + "), len(c.Vertices()))
	}
}
