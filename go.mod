module themecomm

go 1.22
