package themecomm_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 7), plus ablation benchmarks for the design choices
// called out in DESIGN.md. Each benchmark regenerates the corresponding
// table/figure on a reduced-scale configuration; cmd/tcbench runs the same
// harness with larger, paper-like settings and prints the rows.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"themecomm"
	"themecomm/internal/core"
	"themecomm/internal/dbnet"
	"themecomm/internal/engine"
	"themecomm/internal/experiments"
	"themecomm/internal/gen"
	"themecomm/internal/sampling"
	"themecomm/internal/tctree"
	"themecomm/internal/truss"
)

// benchConfig is the reduced-scale experiment configuration used by the
// benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.1
	cfg.Alphas = []float64{0, 0.2, 0.5, 1.0}
	cfg.Epsilons = []float64{0.1, 0.3}
	cfg.MiningSampleEdges = map[string]int{"BK": 300, "GW": 300, "AMINER": 200}
	cfg.EdgeBudgets = []int{100, 300, 800}
	cfg.MaxPatternLength = 3
	cfg.QueryAlphaSteps = 6
	cfg.QueriesPerPoint = 10
	return cfg
}

var (
	benchOnce    sync.Once
	benchBK      *dbnet.Network
	benchBKSmall *dbnet.Network
	benchAM      gen.Dataset
	benchTree    *tctree.Tree
)

// benchSetup generates the shared networks and index once for the micro and
// ablation benchmarks.
func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		bk, err := gen.BK(0.1)
		if err != nil {
			panic(err)
		}
		benchBK = bk.Network
		rng := rand.New(rand.NewSource(7))
		sample, err := sampling.BFS(benchBK, 300, rng)
		if err != nil {
			panic(err)
		}
		benchBKSmall = sample.Network
		benchAM, err = gen.AMiner(0.1)
		if err != nil {
			panic(err)
		}
		benchTree = tctree.Build(benchBK, tctree.BuildOptions{MaxDepth: 3})
	})
}

// BenchmarkTable2DatasetStats regenerates Table 2 (dataset statistics).
func BenchmarkTable2DatasetStats(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(cfg)
		if _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3EffectOfParameters regenerates Figure 3 (effect of α and ε
// on time, NP, NV, NE for TCS, TCFA and TCFI).
func BenchmarkFigure3EffectOfParameters(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(cfg)
		if _, err := s.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Scalability regenerates Figure 4 (runtime and result sizes
// versus the number of BFS-sampled edges).
func BenchmarkFigure4Scalability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(cfg)
		if _, err := s.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Indexing regenerates Table 3 (TC-Tree indexing time, memory
// and node count).
func BenchmarkTable3Indexing(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(cfg)
		if _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5QueryByAlpha regenerates Figures 5(a)-(d) (query-by-alpha
// time and retrieved nodes).
func BenchmarkFigure5QueryByAlpha(b *testing.B) {
	cfg := benchConfig()
	s := experiments.NewSuite(cfg)
	if _, err := s.Table3(); err != nil { // warm the tree cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure5QBA(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5QueryByPattern regenerates Figures 5(e)-(h)
// (query-by-pattern time and retrieved nodes).
func BenchmarkFigure5QueryByPattern(b *testing.B) {
	cfg := benchConfig()
	s := experiments.NewSuite(cfg)
	if _, err := s.Table3(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure5QBP(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaseStudy regenerates the case study of Table 4 / Figure 6.
func BenchmarkCaseStudy(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.15
	s := experiments.NewSuite(cfg)
	if _, err := s.CaseStudy(6); err != nil { // warm dataset and tree caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CaseStudy(6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinerTCS benchmarks the TCS baseline on the BK sample (ε = 0.1,
// α = 0), one cell of Figure 3.
func BenchmarkMinerTCS(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TCS(benchBKSmall, core.Options{Alpha: 0, Epsilon: 0.1, MaxPatternLength: 3})
	}
}

// BenchmarkMinerTCFA benchmarks TCFA on the BK sample (α = 0).
func BenchmarkMinerTCFA(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TCFA(benchBKSmall, core.Options{Alpha: 0, MaxPatternLength: 3})
	}
}

// BenchmarkMinerTCFI benchmarks TCFI on the BK sample (α = 0). Comparing with
// BenchmarkMinerTCFA quantifies the gain of the graph-intersection pruning —
// the central comparison of Figures 3 and 4.
func BenchmarkMinerTCFI(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TCFI(benchBKSmall, core.Options{Alpha: 0, MaxPatternLength: 3})
	}
}

// BenchmarkAblationInduceFromFullGraph quantifies the ablation of DESIGN.md:
// evaluating candidate patterns against the full network (TCFA's strategy)
// versus inside the parents' truss intersection (TCFI's strategy) on the
// co-author analogue.
func BenchmarkAblationInduceFromFullGraph(b *testing.B) {
	benchSetup(b)
	b.Run("full-graph(TCFA)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.TCFA(benchAM.Network, core.Options{Alpha: 0.2, MaxPatternLength: 2})
		}
	})
	b.Run("intersection(TCFI)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.TCFI(benchAM.Network, core.Options{Alpha: 0.2, MaxPatternLength: 2})
		}
	})
}

// BenchmarkAblationTCSEpsilon sweeps the TCS pre-filter threshold ε, the
// accuracy/efficiency trade-off discussed in Section 7.1.
func BenchmarkAblationTCSEpsilon(b *testing.B) {
	benchSetup(b)
	for _, eps := range []float64{0.1, 0.2, 0.3} {
		b.Run(benchName("eps", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TCS(benchBKSmall, core.Options{Alpha: 0, Epsilon: eps, MaxPatternLength: 3})
			}
		})
	}
}

// BenchmarkAblationMinerParallelism compares serial and parallel candidate
// evaluation in TCFI (Options.Parallelism), an implementation extension on
// top of the paper's serial algorithm.
func BenchmarkAblationMinerParallelism(b *testing.B) {
	benchSetup(b)
	for _, workers := range []int{1, 4} {
		b.Run(benchName("workers", float64(workers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TCFI(benchBK, core.Options{Alpha: 0.1, MaxPatternLength: 3, Parallelism: workers})
			}
		})
	}
}

// BenchmarkAblationTreeParallelism compares serial and parallel TC-Tree
// first-level construction (Lines 2-5 of Algorithm 4).
func BenchmarkAblationTreeParallelism(b *testing.B) {
	benchSetup(b)
	for _, workers := range []int{1, 4} {
		b.Run(benchName("workers", float64(workers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tctree.Build(benchBKSmall, tctree.BuildOptions{Parallelism: workers, MaxDepth: 3})
			}
		})
	}
}

// BenchmarkMPTD benchmarks a single Maximal Pattern Truss Detector run
// (Algorithm 1) on a single-item theme network of the BK analogue.
func BenchmarkMPTD(b *testing.B) {
	benchSetup(b)
	items := benchBK.Items()
	if items.Len() == 0 {
		b.Skip("no items")
	}
	tn := benchBK.ThemeNetwork(themecomm.NewItemset(items[0]))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truss.Detect(tn, 0)
	}
}

// BenchmarkDecomposition benchmarks the maximal pattern truss decomposition
// (Theorem 6.1) used by every TC-Tree node.
func BenchmarkDecomposition(b *testing.B) {
	benchSetup(b)
	items := benchBK.Items()
	if items.Len() == 0 {
		b.Skip("no items")
	}
	tn := benchBK.ThemeNetwork(themecomm.NewItemset(items[0]))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truss.Decompose(tn)
	}
}

// BenchmarkTreeQueryByAlpha benchmarks a single QBA query against the shared
// BK TC-Tree (one point of Figure 5(a)).
func BenchmarkTreeQueryByAlpha(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTree.QueryByAlpha(0)
	}
}

// BenchmarkTreeQueryByPattern benchmarks a single QBP query against the shared
// BK TC-Tree (one point of Figure 5(e)).
func BenchmarkTreeQueryByPattern(b *testing.B) {
	benchSetup(b)
	rng := rand.New(rand.NewSource(3))
	q, ok := experiments.QueryPatternOfLength(benchTree, 1, rng)
	if !ok {
		b.Skip("tree has no depth-1 patterns")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTree.QueryByPattern(q)
	}
}

// fullPattern returns the query pattern containing every indexed top-level
// item of a tree — the heaviest query the index can answer, and the one that
// touches every shard of the engine.
func fullPattern(b *testing.B, tree *tctree.Tree) themecomm.Itemset {
	b.Helper()
	var items []themecomm.Item
	for _, c := range tree.Root().Children {
		items = append(items, c.Item)
	}
	if len(items) < 2 {
		b.Skip("tree has fewer than 2 shards")
	}
	return themecomm.NewItemset(items...)
}

var (
	benchShardOnce sync.Once
	benchShardTree *tctree.Tree
)

// benchShardSetup builds a synthetic multi-item network designed for the
// sharding benchmarks: independent dense blocks of vertices, one item per
// block, so the TC-Tree partitions into balanced shards of equal work.
func benchShardSetup(b *testing.B) {
	b.Helper()
	benchShardOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		const blocks, blockSize = 16, 64
		nw := dbnet.New(blocks * blockSize)
		for blk := 0; blk < blocks; blk++ {
			base := blk * blockSize
			for u := 0; u < blockSize; u++ {
				for v := u + 1; v < blockSize; v++ {
					if rng.Float64() < 0.5 {
						nw.MustAddEdge(themecomm.VertexID(base+u), themecomm.VertexID(base+v))
					}
				}
				if err := nw.AddTransaction(themecomm.VertexID(base+u), themecomm.NewItemset(themecomm.Item(blk))); err != nil {
					panic(err)
				}
			}
		}
		benchShardTree = tctree.Build(nw, tctree.BuildOptions{})
	})
}

// BenchmarkEngineShardedVsSequential compares the single-threaded
// tctree.Query walk with the engine's sharded parallel execution (cache
// disabled, so every iteration traverses the index) on the balanced
// multi-item synthetic network. The "sequential" and "workers=1" rows
// quantify the sharding overhead; the multi-worker rows the parallel
// speedup.
func BenchmarkEngineShardedVsSequential(b *testing.B) {
	benchShardSetup(b)
	q := fullPattern(b, benchShardTree)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchShardTree.Query(q, 0)
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		eng, err := engine.New(benchShardTree, engine.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("sharded-workers", float64(workers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.Query(q, 0)
			}
		})
	}
}

// BenchmarkEngineCacheColdVsWarm measures the repeated-workload speedup of
// the LRU result cache: "cold" executes the sharded traversal every
// iteration (cache disabled), "warm" serves every iteration from the cache
// after one warming query.
func BenchmarkEngineCacheColdVsWarm(b *testing.B) {
	benchSetup(b)
	q := fullPattern(b, benchTree)
	cold, err := engine.New(benchTree, engine.Options{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cold.Query(q, 0.1)
		}
	})
	warm, err := engine.New(benchTree, engine.Options{Workers: 4, CacheSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	warm.Query(q, 0.1)
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			warm.Query(q, 0.1)
		}
	})
}

// BenchmarkEngineBatch compares answering a mixed workload one query at a
// time against a single QueryBatch call (cache disabled, so the benchmark
// measures execution, not caching).
func BenchmarkEngineBatch(b *testing.B) {
	benchShardSetup(b)
	full := fullPattern(b, benchShardTree)
	var reqs []engine.Request
	for _, it := range full {
		reqs = append(reqs, engine.Request{Pattern: themecomm.NewItemset(it), Alpha: 0})
	}
	reqs = append(reqs,
		engine.Request{Pattern: full, Alpha: 0},
		engine.Request{Alpha: 0.2},
		engine.Request{Alpha: 0.5},
	)
	eng, err := engine.New(benchShardTree, engine.Options{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("one-by-one", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				eng.Query(r.Pattern, r.Alpha)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.QueryBatch(reqs)
		}
	})
}

// BenchmarkEngineColdStartFullVsLazy measures time-to-first-answer from a
// cold process: reading the index from disk and answering one single-item
// query. "full-load" reads the whole monolithic file before the first answer;
// "lazy-load" opens only the sharded manifest and reads the one shard the
// query touches, so its cold start is proportional to the hot set, not the
// index size.
func BenchmarkEngineColdStartFullVsLazy(b *testing.B) {
	benchShardSetup(b)
	dir := b.TempDir()
	monoPath := filepath.Join(dir, "bench.tctree")
	if err := benchShardTree.WriteFile(monoPath); err != nil {
		b.Fatal(err)
	}
	shardDir := filepath.Join(dir, "bench.index")
	if _, err := benchShardTree.WriteSharded(shardDir); err != nil {
		b.Fatal(err)
	}
	q := themecomm.NewItemset(benchShardTree.Root().Children[0].Item)
	b.Run("full-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree, err := tctree.ReadFile(monoPath)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := engine.New(tree, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Query(q, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := tctree.OpenSharded(shardDir)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := engine.NewLazy(idx, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Query(q, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

var (
	benchSkewOnce sync.Once
	benchSkewTree *tctree.Tree
)

// benchSkewSetup builds a synthetic multi-item network whose blocks have
// decreasing edge density, so the per-shard α* bounds spread out and a
// selective (high-α_q) query can skip the sparse shards from the manifest
// alone — the workload BenchmarkPlannerSkip measures.
func benchSkewSetup(b *testing.B) {
	b.Helper()
	benchSkewOnce.Do(func() {
		rng := rand.New(rand.NewSource(17))
		const blocks, blockSize = 8, 48
		nw := dbnet.New(blocks * blockSize)
		for blk := 0; blk < blocks; blk++ {
			base := blk * blockSize
			density := 0.9 - 0.8*float64(blk)/float64(blocks-1)
			for u := 0; u < blockSize; u++ {
				for v := u + 1; v < blockSize; v++ {
					if rng.Float64() < density {
						nw.MustAddEdge(themecomm.VertexID(base+u), themecomm.VertexID(base+v))
					}
				}
				if err := nw.AddTransaction(themecomm.VertexID(base+u), themecomm.NewItemset(themecomm.Item(blk))); err != nil {
					panic(err)
				}
			}
		}
		benchSkewTree = tctree.Build(nw, tctree.BuildOptions{})
	})
}

// BenchmarkPlannerSkip measures the planner's data-skipping win on a lazy
// engine: a selective query (α_q at the median per-shard α* bound) over a
// sharded on-disk index, cold each iteration, with the planner on versus
// off. Besides ns/op the benchmark reports shardloads/op — the number of
// shard files read from disk per query — which the planner must keep
// strictly below the planner-off engine's (it answers the skipped shards
// from the manifest alone).
func BenchmarkPlannerSkip(b *testing.B) {
	benchSkewSetup(b)
	dir := filepath.Join(b.TempDir(), "skew.index")
	manifest, err := benchSkewTree.WriteSharded(dir)
	if err != nil {
		b.Fatal(err)
	}
	alphas := make([]float64, 0, len(manifest.Shards))
	for _, e := range manifest.Shards {
		alphas = append(alphas, e.MaxAlpha)
	}
	sort.Float64s(alphas)
	alphaQ := alphas[len(alphas)/2] // α* skew: roughly half the shards are skippable
	q := fullPattern(b, benchSkewTree)
	for _, planner := range []bool{true, false} {
		name := "planner=on"
		if !planner {
			name = "planner=off"
		}
		b.Run(name, func(b *testing.B) {
			loads := uint64(0)
			for i := 0; i < b.N; i++ {
				idx, err := tctree.OpenSharded(dir)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := engine.NewLazy(idx, engine.Options{Workers: 4, DisablePlanner: !planner})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Query(q, alphaQ); err != nil {
					b.Fatal(err)
				}
				loads += eng.Stats().LazyLoads
			}
			b.ReportMetric(float64(loads)/float64(b.N), "shardloads/op")
		})
	}
}

func benchName(prefix string, v float64) string {
	if v == float64(int(v)) {
		return fmt.Sprintf("%s=%d", prefix, int(v))
	}
	return fmt.Sprintf("%s=%.1f", prefix, v)
}
