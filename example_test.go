package themecomm_test

// Godoc examples for the public API. They double as documentation on
// pkg.go.dev-style doc pages and as executable tests of the examples' output.

import (
	"fmt"

	"themecomm"
)

// buildCircle builds a 4-person clique in which everyone keeps buying the two
// items together.
func buildCircle(items ...themecomm.Item) *themecomm.Network {
	nw := themecomm.NewNetwork(4)
	for u := themecomm.VertexID(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			nw.MustAddEdge(u, v)
		}
		for i := 0; i < 5; i++ {
			if err := nw.AddTransaction(u, themecomm.NewItemset(items...)); err != nil {
				panic(err)
			}
		}
	}
	return nw
}

func ExampleFindThemeCommunities() {
	dict := themecomm.NewDictionary()
	diapers, beer := dict.Intern("diapers"), dict.Intern("beer")
	nw := buildCircle(diapers, beer)

	for _, c := range themecomm.FindThemeCommunities(nw, 0.5) {
		fmt.Println(dict.Names(c.Pattern), len(c.Vertices()), "members")
	}
	// Output:
	// [diapers] 4 members
	// [beer] 4 members
	// [diapers beer] 4 members
}

func ExampleMineTCFI() {
	dict := themecomm.NewDictionary()
	coffee, cake := dict.Intern("coffee"), dict.Intern("cake")
	nw := buildCircle(coffee, cake)

	res := themecomm.MineTCFI(nw, themecomm.MiningOptions{Alpha: 0.5})
	fmt.Println("patterns:", res.NumPatterns())
	fmt.Println("largest theme:", dict.Names(res.Patterns()[len(res.Patterns())-1]))
	// Output:
	// patterns: 3
	// largest theme: [coffee cake]
}

func ExampleBuildTree() {
	dict := themecomm.NewDictionary()
	ski, chalet := dict.Intern("ski"), dict.Intern("chalet")
	nw := buildCircle(ski, chalet)

	tree := themecomm.BuildTree(nw, themecomm.TreeBuildOptions{})
	answer := tree.Query(themecomm.NewItemset(ski, chalet), 0.5)
	fmt.Println("indexed trusses:", tree.NumNodes())
	fmt.Println("retrieved:", answer.RetrievedNodes)
	// Output:
	// indexed trusses: 3
	// retrieved: 3
}

func ExampleDetectMaximalPatternTruss() {
	dict := themecomm.NewDictionary()
	gym, sauna := dict.Intern("gym"), dict.Intern("sauna")
	nw := buildCircle(gym, sauna)

	tr := themecomm.DetectMaximalPatternTruss(nw, themecomm.NewItemset(gym, sauna), 1.0)
	fmt.Println("vertices:", tr.NumVertices(), "edges:", tr.NumEdges())
	// Output:
	// vertices: 4 edges: 6
}

func ExampleMineEdgeThemeCommunities() {
	dict := themecomm.NewDictionary()
	funding, pitch := dict.Intern("funding"), dict.Intern("pitch")

	// Three founders whose pairwise chats all revolve around the pitch.
	nw := themecomm.NewEdgeNetwork(3)
	for _, e := range [][2]themecomm.VertexID{{0, 1}, {0, 2}, {1, 2}} {
		for i := 0; i < 4; i++ {
			if err := nw.AddInteraction(e[0], e[1], themecomm.NewItemset(funding, pitch)); err != nil {
				panic(err)
			}
		}
	}
	res := themecomm.MineEdgeThemeCommunities(nw, themecomm.EdgeMiningOptions{Alpha: 0.5})
	for _, c := range res.Communities() {
		fmt.Println(dict.Names(c.Pattern), len(c.Vertices()), "members")
	}
	// Output:
	// [funding] 3 members
	// [pitch] 3 members
	// [funding pitch] 3 members
}
