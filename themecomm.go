// Package themecomm finds theme communities in database networks.
//
// It is a from-scratch Go implementation of "Finding Theme Communities from
// Database Networks: from Mining to Indexing and Query Answering"
// (Chu et al., VLDB 2019). A database network is an undirected graph whose
// every vertex carries a transaction database; a theme community is a
// cohesive (triangle-rich) connected subgraph whose vertices all exhibit a
// common frequent pattern — the community's theme.
//
// The package exposes:
//
//   - the database-network data model (Network, ThemeNetwork) with a simple
//     text serialization;
//   - the pattern-truss machinery: maximal pattern truss detection (MPTD) and
//     decomposition;
//   - the three mining algorithms of the paper: the TCS baseline, TCFA
//     (Apriori pruning) and TCFI (graph-intersection pruning, the paper's
//     fastest exact method);
//   - the TC-Tree index with query answering by pattern and by cohesion
//     threshold, persisted either as one file or as a sharded index (one
//     file per top-level item plus a manifest) that can be served lazily;
//   - the concurrent query-serving engine: a cost-based planner that skips
//     shards from catalogue statistics alone (α* bounds) and schedules the
//     expensive ones first, sharded parallel execution with background shard
//     prefetch, an LRU result cache, batch queries, top-k ranking, an
//     Explain API, and a lazy mode that loads shards from disk on first
//     touch under a configurable residency budget;
//   - synthetic dataset generators emulating the paper's evaluation datasets.
//
// The cmd/ directory contains command-line tools, examples/ contains runnable
// examples, and README.md documents the architecture (mining → index →
// engine → server) and how the paper's experiments are reproduced.
package themecomm

import (
	"io"
	"net/http"

	"themecomm/internal/core"
	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/edgenet"
	"themecomm/internal/engine"
	"themecomm/internal/federation"
	"themecomm/internal/gen"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/loaders"
	"themecomm/internal/obs"
	"themecomm/internal/server"
	"themecomm/internal/tctree"
	"themecomm/internal/truss"
	"themecomm/internal/txdb"
)

// Core data-model types.
type (
	// Item identifies a single item of the item universe S.
	Item = itemset.Item
	// Itemset is a canonical (sorted, duplicate-free) set of items; patterns
	// and themes are itemsets.
	Itemset = itemset.Itemset
	// Dictionary maps human-readable item names to Items and back.
	Dictionary = itemset.Dictionary
	// Transaction is one transaction of a vertex database.
	Transaction = txdb.Transaction
	// Database is the transaction database attached to one vertex.
	Database = txdb.Database
	// VertexID identifies a vertex of the database network.
	VertexID = graph.VertexID
	// Edge is an undirected edge in canonical (U < V) orientation.
	Edge = graph.Edge
	// EdgeSet is a set of edges; theme communities are connected edge sets.
	EdgeSet = graph.EdgeSet
	// Network is a database network: a graph whose vertices carry databases.
	Network = dbnet.Network
	// NetworkStats summarises a network (Table 2 of the paper).
	NetworkStats = dbnet.Stats
	// ThemeNetwork is the subgraph induced by the vertices on which a pattern
	// has positive frequency.
	ThemeNetwork = dbnet.ThemeNetwork
)

// Mining and indexing types.
type (
	// Truss is a maximal pattern truss C*_p(α).
	Truss = truss.Truss
	// Decomposition is the threshold-ordered decomposition L_p of a maximal
	// pattern truss, supporting reconstruction at any α.
	Decomposition = truss.Decomposition
	// MiningOptions configures the mining algorithms.
	MiningOptions = core.Options
	// MiningResult is the set of maximal pattern trusses found by a miner.
	MiningResult = core.Result
	// Community is one theme community: a connected subgraph annotated with
	// its theme.
	Community = core.Community
	// Tree is the TC-Tree index over all maximal pattern trusses.
	Tree = tctree.Tree
	// TreeNode is one node of the TC-Tree.
	TreeNode = tctree.Node
	// TreeBuildOptions configures TC-Tree construction.
	TreeBuildOptions = tctree.BuildOptions
	// QueryResult is the answer to a TC-Tree query.
	QueryResult = tctree.QueryResult
	// Dataset is a generated dataset analogue (network plus item dictionary).
	Dataset = gen.Dataset
)

// Query-serving engine types.
type (
	// Engine is the concurrent query-serving layer over a TC-Tree: cost-based
	// plan→execute query answering (α* shard skipping, cost-ordered
	// scheduling, background prefetch), an LRU result cache, batch and top-k
	// queries.
	Engine = engine.Engine
	// EngineOptions configures an Engine (workers, cache size, residency
	// budget, planner and prefetch settings).
	EngineOptions = engine.Options
	// EngineStats is a snapshot of the engine's execution and cache counters.
	EngineStats = engine.Stats
	// EngineRequest is one query of an Engine.QueryBatch call.
	EngineRequest = engine.Request
	// RankedCommunity is one community of an Engine.TopK answer, annotated
	// with the cohesion it was ranked by.
	RankedCommunity = engine.RankedCommunity
	// QueryPlan is the cost-based planner's output: per-shard
	// skip/resident/load decisions plus a cost-ordered schedule.
	QueryPlan = engine.QueryPlan
	// EngineExplain is the annotated plan + execution report of
	// Engine.Explain (and GET /api/v1/explain).
	EngineExplain = engine.ExplainReport
)

// NewEngine returns a query-serving engine over a built TC-Tree.
func NewEngine(tree *Tree, opts EngineOptions) (*Engine, error) { return engine.New(tree, opts) }

// Federation types: one serving process fronting many named indexed
// networks — the multi-tenant "data warehouse of maximal pattern trusses" —
// with per-network engines and shard pools behind one shared result cache
// and one shared residency budget.
type (
	// Federation manages many named networks sharing a result cache and a
	// residency budget, with cross-network batch queries.
	Federation = federation.Federation
	// FederationOptions configures a Federation and its member engines.
	FederationOptions = federation.Options
	// FederationNetworkOptions carries one network's presentation metadata
	// (item dictionary, vertex display names).
	FederationNetworkOptions = federation.NetworkOptions
	// FederationNetwork is one attached tenant: a named engine plus its
	// metadata.
	FederationNetwork = federation.Network
	// FederationStats is a snapshot of the federation's shared resources,
	// aggregates and per-network engine counters.
	FederationStats = federation.Stats
	// DiscoveredNetwork is one indexed network found in a networks
	// directory.
	DiscoveredNetwork = federation.DiscoveredNetwork
)

// NewFederation returns an empty federation; attach networks with
// AttachTree / AttachIndex.
func NewFederation(opts FederationOptions) *Federation { return federation.New(opts) }

// OpenFederation builds a federation from every indexed network found in
// dir: sharded index directories attach lazily, .tctree files eagerly, and a
// sibling <name>.dbnet file provides a network's item dictionary.
func OpenFederation(dir string, opts FederationOptions) (*Federation, error) {
	return federation.Discover(dir, opts)
}

// DiscoverNetworks lists the indexed networks inside dir without opening
// them, in ascending name order.
func DiscoverNetworks(dir string) ([]DiscoveredNetwork, error) {
	return federation.DiscoverNetworks(dir)
}

// Sharded index persistence types.
type (
	// ShardedIndex is a handle on a sharded on-disk index directory: one gob
	// file per first-level subtree plus an index.manifest catalogue.
	ShardedIndex = tctree.ShardedIndex
	// IndexManifest is the content of a sharded index's manifest file.
	IndexManifest = tctree.Manifest
	// IndexShardEntry is the manifest metadata of one shard.
	IndexShardEntry = tctree.ShardEntry
)

// Shard encodings of the sharded on-disk format. FormatGob is the legacy
// per-shard gob encoding, decoded whole into memory on load; FormatTCBIN is
// the flat binary layout served zero-copy from a memory-mapped file.
const (
	FormatGob   = tctree.FormatGob
	FormatTCBIN = tctree.FormatTCBIN
)

// WriteShardedTree writes a built TC-Tree in the sharded on-disk format: one
// shard file per top-level item plus an index.manifest, all inside dir. The
// shard encoding defaults to gob and can be overridden with the
// TC_INDEX_FORMAT environment variable; use WriteShardedTreeAs to pick it
// explicitly.
func WriteShardedTree(tree *Tree, dir string) (*IndexManifest, error) { return tree.WriteSharded(dir) }

// WriteShardedTreeAs writes a sharded index in the given shard encoding
// (FormatGob or FormatTCBIN).
func WriteShardedTreeAs(tree *Tree, dir, format string) (*IndexManifest, error) {
	return tree.WriteShardedAs(dir, format)
}

// MigrateIndexFormat re-encodes every shard of an opened index into the
// target format (FormatGob or FormatTCBIN) in place: new shard files are
// written and synced first, one manifest write commits the switch, and the
// old format's files are removed afterwards. A crash mid-migration leaves
// the index serving its original format.
func MigrateIndexFormat(idx *ShardedIndex, target string) error { return idx.MigrateFormat(target) }

// OpenShardedIndex opens a sharded index directory written by
// WriteShardedTree (or tcindex -sharded). Only the manifest is read; shards
// load on demand.
func OpenShardedIndex(dir string) (*ShardedIndex, error) { return tctree.OpenSharded(dir) }

// IsShardedIndex reports whether path is a sharded index directory.
func IsShardedIndex(path string) bool { return tctree.IsSharded(path) }

// NewLazyEngine returns a query-serving engine that loads shards from a
// sharded index on first touch, keeping at most opts.MaxResidentShards of
// them resident (0 = unlimited).
func NewLazyEngine(idx *ShardedIndex, opts EngineOptions) (*Engine, error) {
	return engine.NewLazy(idx, opts)
}

// OpenEngine opens either index format transparently: a sharded index
// directory becomes a lazy engine, a monolithic tree file an eager one.
func OpenEngine(path string, opts EngineOptions) (*Engine, error) {
	if IsShardedIndex(path) {
		idx, err := OpenShardedIndex(path)
		if err != nil {
			return nil, err
		}
		return NewLazyEngine(idx, opts)
	}
	tree, err := ReadTreeFile(path)
	if err != nil {
		return nil, err
	}
	return engine.New(tree, opts)
}

// Incremental maintenance types: apply network deltas to a live index
// instead of rebuilding it from scratch.
type (
	// NetworkDelta is one batch of changes to a database network: added
	// vertices, added/removed edges, added transactions.
	NetworkDelta = delta.Delta
	// DeltaTransaction is one transaction of a delta, bound to its vertex.
	DeltaTransaction = delta.VertexTransaction
	// DeltaResult summarises an Engine.ApplyDelta call (affected items,
	// per-shard outcomes, the new index epoch).
	DeltaResult = engine.DeltaResult
	// IndexCommitReport details one sharded-index commit: which shards were
	// replaced, added and removed.
	IndexCommitReport = tctree.CommitReport
)

// AffectedItems bounds the set of top-level items whose index shards can
// change when the delta is applied — call it BEFORE ApplyNetworkDelta.
func AffectedItems(nw *Network, d *NetworkDelta) Itemset { return delta.AffectedItems(nw, d) }

// ApplyNetworkDelta validates the delta and mutates the network in place.
// Serving layers update index and network together instead: see
// Engine.ApplyDelta (in-memory or lazy engine), ShardedIndex.ApplyDelta
// (on-disk index without an engine), Federation.ApplyDelta (one tenant of a
// federation), or POST /api/v1/update on a running tcserver.
func ApplyNetworkDelta(nw *Network, d *NetworkDelta) error { return delta.Apply(nw, d) }

// ReadDelta parses a delta from its TCDELTA text serialization; dict, when
// non-nil, resolves (and interns) item names.
func ReadDelta(r io.Reader, dict *Dictionary) (*NetworkDelta, error) { return delta.Read(r, dict) }

// ReadDeltaFile reads a delta from a file.
func ReadDeltaFile(path string, dict *Dictionary) (*NetworkDelta, error) {
	return delta.ReadFile(path, dict)
}

// WriteDelta serializes a delta to w.
func WriteDelta(w io.Writer, d *NetworkDelta) error { return delta.Write(w, d) }

// RebuildSubtree re-decomposes the first-level TC-Tree subtree of one
// top-level item from the current network state; nil means the item indexes
// nothing any more.
func RebuildSubtree(nw *Network, item Item) *TreeNode { return tctree.RebuildSubtree(nw, item) }

// NewNetwork returns a database network with n vertices, no edges and empty
// vertex databases.
func NewNetwork(n int) *Network { return dbnet.New(n) }

// NewDictionary returns an empty item dictionary.
func NewDictionary() *Dictionary { return itemset.NewDictionary() }

// NewItemset returns the canonical itemset of the given items.
func NewItemset(items ...Item) Itemset { return itemset.New(items...) }

// NewDatabase returns an empty transaction database.
func NewDatabase() *Database { return txdb.New() }

// EdgeBetween returns the canonical edge between two vertices.
func EdgeBetween(a, b VertexID) Edge { return graph.EdgeOf(a, b) }

// ReadNetwork parses a database network from its text serialization.
func ReadNetwork(r io.Reader) (*Network, *Dictionary, error) { return dbnet.Read(r) }

// ReadNetworkFile reads a database network from a file.
func ReadNetworkFile(path string) (*Network, *Dictionary, error) { return dbnet.ReadFile(path) }

// WriteNetwork serializes a database network (and optional dictionary) to w.
func WriteNetwork(w io.Writer, nw *Network, dict *Dictionary) error { return dbnet.Write(w, nw, dict) }

// WriteNetworkFile writes a database network to a file.
func WriteNetworkFile(path string, nw *Network, dict *Dictionary) error {
	return dbnet.WriteFile(path, nw, dict)
}

// WriteNetworkFileAtomic durably replaces a network file (write-to-temp +
// fsync + rename), so a crash mid-write can never tear it. Incremental
// maintenance uses it for the post-update network write-back.
func WriteNetworkFileAtomic(path string, nw *Network, dict *Dictionary) error {
	return dbnet.WriteFileAtomic(path, nw, dict)
}

// MineTCS runs the Theme Community Scanner baseline: it pre-filters candidate
// patterns by the per-vertex frequency threshold opts.Epsilon and detects a
// maximal pattern truss for each survivor. Exact only when Epsilon is 0.
func MineTCS(nw *Network, opts MiningOptions) *MiningResult { return core.TCS(nw, opts) }

// MineTCFA runs the exact Theme Community Finder Apriori algorithm.
func MineTCFA(nw *Network, opts MiningOptions) *MiningResult { return core.TCFA(nw, opts) }

// MineTCFI runs the exact Theme Community Finder Intersection algorithm — the
// paper's recommended miner and the fastest of the three.
func MineTCFI(nw *Network, opts MiningOptions) *MiningResult { return core.TCFI(nw, opts) }

// FindThemeCommunities mines the network with TCFI at the given cohesion
// threshold and returns every theme community (maximal connected subgraph of a
// maximal pattern truss).
func FindThemeCommunities(nw *Network, alpha float64) []Community {
	return core.TCFI(nw, core.Options{Alpha: alpha}).Communities()
}

// InduceThemeNetwork induces the theme network G_p of pattern p from the
// database network.
func InduceThemeNetwork(nw *Network, p Itemset) *ThemeNetwork { return nw.ThemeNetwork(p) }

// DetectMaximalPatternTruss runs MPTD on the theme network of p and returns
// the maximal pattern truss C*_p(alpha).
func DetectMaximalPatternTruss(nw *Network, p Itemset, alpha float64) *Truss {
	return truss.Detect(nw.ThemeNetwork(p), alpha)
}

// DecomposePattern decomposes the maximal pattern truss C*_p(0) of pattern p
// into the threshold-ordered levels that allow reconstructing C*_p(α) for any
// α without re-running MPTD.
func DecomposePattern(nw *Network, p Itemset) *Decomposition {
	return truss.Decompose(nw.ThemeNetwork(p))
}

// BuildTree builds the TC-Tree index of the network.
func BuildTree(nw *Network, opts TreeBuildOptions) *Tree { return tctree.Build(nw, opts) }

// ReadTree reads a TC-Tree previously written with (*Tree).Write.
func ReadTree(r io.Reader) (*Tree, error) { return tctree.ReadFrom(r) }

// VertexProfile summarises the theme-community memberships of one vertex.
type VertexProfile = tctree.VertexProfile

// SearchCommunitiesByVertex returns every theme community of the indexed
// network that contains the query vertex, restricted to sub-patterns of q
// (nil means every theme) and to the cohesion threshold alpha. This is the
// community-search counterpart of the k-truss search discussed in the paper's
// related work, answered from the TC-Tree.
func SearchCommunitiesByVertex(tree *Tree, v VertexID, q Itemset, alpha float64) []Community {
	return tree.SearchVertex(v, q, alpha)
}

// ReadTreeFile reads a TC-Tree from a file.
func ReadTreeFile(path string) (*Tree, error) { return tctree.ReadFile(path) }

// GenerateDataset generates one of the paper's dataset analogues by name
// ("BK", "GW", "AMINER" or "SYN") at the given scale factor (1.0 is the
// generator default; smaller is faster).
func GenerateDataset(name string, scale float64) (Dataset, error) {
	return gen.ByName(name, gen.Scale(scale))
}

// Loader types for building database networks from the raw formats of the
// paper's real datasets.
type (
	// CheckInLoadOptions configures LoadCheckIns.
	CheckInLoadOptions = loaders.CheckInOptions
	// CoAuthorLoadOptions configures LoadCitationArchive.
	CoAuthorLoadOptions = loaders.CoAuthorOptions
	// CoAuthorNetwork is a co-author database network loaded from a citation
	// archive, with its keyword dictionary and author names.
	CoAuthorNetwork = loaders.CoAuthorResult
	// PaperRecord is one publication record of a citation archive.
	PaperRecord = loaders.Paper
)

// LoadCheckIns builds a database network from the SNAP check-in format used
// by the Brightkite and Gowalla datasets: a friendship edge list and a
// check-in log, with each user's check-ins grouped into fixed-length periods
// (2 days by default) whose location sets become transactions.
func LoadCheckIns(edges, checkins io.Reader, opts CheckInLoadOptions) (*Network, *Dictionary, error) {
	return loaders.CheckIns(edges, checkins, opts)
}

// LoadCitationArchive builds a co-author database network from an AMINER-style
// citation archive: authors become vertices, co-authorship becomes edges, and
// each paper's abstract keywords become a transaction on every author.
func LoadCitationArchive(r io.Reader, opts CoAuthorLoadOptions) (*CoAuthorNetwork, error) {
	return loaders.LoadAMiner(r, opts)
}

// Observability types: the dependency-free metrics/tracing layer. An
// Observer records per-query latency and stage-timing histograms into a
// Prometheus-text-format registry and captures slow queries (with their full
// plan) into a ring buffer; inject it as EngineOptions.Recorder /
// FederationOptions.Recorder and hand it to the query server
// (QueryServerOptions.Obs) to expose GET /metrics and GET /api/v1/slowlog.
type (
	// Observer is the production QueryRecorder: metrics + slow-query log.
	Observer = obs.Observer
	// ObserverOptions configures NewObserver (registry, slow-query threshold
	// and ring size, structured logger).
	ObserverOptions = obs.ObserverOptions
	// QueryRecorder receives one QueryObservation per engine query.
	QueryRecorder = obs.Recorder
	// QueryObservation is one engine query as seen by a QueryRecorder.
	QueryObservation = obs.QueryObservation
	// MetricsRegistry holds metric families and renders them in the
	// Prometheus text exposition format.
	MetricsRegistry = obs.Registry
)

// RequestIDHeader is the HTTP header carrying a query's correlation ID
// through the server ("X-Request-ID"): accepted from clients, echoed on
// responses, attached to access-log and slow-query-log lines.
const RequestIDHeader = obs.HeaderRequestID

// NewObserver returns an Observer; see ObserverOptions.
func NewObserver(opts ObserverOptions) *Observer { return obs.NewObserver(opts) }

// QueryServerOptions configures NewQueryServer.
type QueryServerOptions = server.Options

// NewQueryServer wraps a built TC-Tree in an http.Handler exposing the
// query-answering API (see cmd/tcserver for the endpoints).
func NewQueryServer(tree *Tree, opts QueryServerOptions) (http.Handler, error) {
	return server.New(tree, opts)
}

// Edge database networks — the extension the paper proposes as future work
// (Section 8), in which every edge carries a transaction database describing
// the interactions between its endpoints.
type (
	// EdgeNetwork is a network whose edges carry transaction databases.
	EdgeNetwork = edgenet.Network
	// EdgeThemeNetwork is the edge-induced theme network of a pattern.
	EdgeThemeNetwork = edgenet.ThemeNetwork
	// EdgeTruss is a maximal edge-pattern truss.
	EdgeTruss = edgenet.Truss
	// EdgeMiningOptions configures MineEdgeThemeCommunities.
	EdgeMiningOptions = edgenet.Options
	// EdgeMiningResult is the set of maximal edge-pattern trusses of a run.
	EdgeMiningResult = edgenet.Result
	// EdgeCommunity is one edge theme community.
	EdgeCommunity = edgenet.Community
)

// NewEdgeNetwork returns an edge database network with n vertices.
func NewEdgeNetwork(n int) *EdgeNetwork { return edgenet.New(n) }

// MineEdgeThemeCommunities mines every maximal edge-pattern truss of an edge
// database network.
func MineEdgeThemeCommunities(nw *EdgeNetwork, opts EdgeMiningOptions) *EdgeMiningResult {
	return edgenet.Find(nw, opts)
}

// DetectEdgePatternTruss computes the maximal edge-pattern truss of pattern p
// at the given cohesion threshold.
func DetectEdgePatternTruss(nw *EdgeNetwork, p Itemset, alpha float64) *EdgeTruss {
	return edgenet.Detect(nw.ThemeNetwork(p), alpha)
}
