#!/usr/bin/env bash
# End-to-end observability smoke test: generate a dataset, build a sharded
# index, start tcserver with the full observability stack (slow-query log,
# pprof sidecar, JSON access log), drive a query with an injected
# X-Request-ID, and assert the whole pipeline:
#
#   - the response echoes the injected request ID;
#   - the JSON access log carries the same ID;
#   - /metrics is valid enough to grep and its engine/query/HTTP counters
#     moved;
#   - /api/v1/slowlog captured the query (threshold 1ns) with its plan;
#   - /healthz reports the network ready;
#   - the pprof sidecar answers on its own listener;
#   - tcquery -server round-trips against the running server.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building tools"
go build -o "$workdir/tcgen" ./cmd/tcgen
go build -o "$workdir/tcindex" ./cmd/tcindex
go build -o "$workdir/tcserver" ./cmd/tcserver
go build -o "$workdir/tcquery" ./cmd/tcquery

echo "== generating and indexing a dataset"
"$workdir/tcgen" -dataset BK -scale 0.1 -out "$workdir/bk.dbnet"
"$workdir/tcindex" -in "$workdir/bk.dbnet" -sharded "$workdir/bk.index"

# Bind both listeners to :0 — the kernel picks free ports, so the smoke test
# never collides with whatever else runs on the CI host. tcserver listens
# before logging "listening on <actual address>", so the log line doubles as
# the readiness signal: once it appears the port is accepting.
echo "== starting tcserver on 127.0.0.1:0 (pprof on 127.0.0.1:0)"
"$workdir/tcserver" -tree "$workdir/bk.index" -net "$workdir/bk.dbnet" \
  -addr "127.0.0.1:0" -pprof "127.0.0.1:0" -slowquery 1ns \
  >"$workdir/server.out" 2>"$workdir/server.log" &
server_pid=$!

addr=""
pprof_addr=""
for i in $(seq 1 50); do
  addr=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$workdir/server.log" | head -1)
  pprof_addr=$(sed -n 's|.*pprof listening on http://\(127\.0\.0\.1:[0-9]*\)/.*|\1|p' "$workdir/server.log" | head -1)
  if [ -n "$addr" ] && [ -n "$pprof_addr" ]; then break; fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "tcserver died:" >&2; cat "$workdir/server.log" >&2; exit 1
  fi
  sleep 0.2
done
if [ -z "$addr" ] || [ -z "$pprof_addr" ]; then
  echo "tcserver never logged its listeners:" >&2; cat "$workdir/server.log" >&2; exit 1
fi
echo "== bound: api $addr, pprof $pprof_addr"

fail() { echo "FAIL: $1" >&2; cat "$workdir/server.log" >&2; exit 1; }

echo "== health"
health=$(curl -sf "http://$addr/healthz")
echo "$health" | grep -q '"status":"ok"' || fail "/healthz not ok: $health"
echo "$health" | grep -q '"ready":true' || fail "/healthz reports no ready network: $health"

echo "== query with injected X-Request-ID"
reqid="smoke-req-42"
headers=$(curl -sf -D - -o "$workdir/query.json" \
  -H "X-Request-ID: $reqid" "http://$addr/api/v1/query?alpha=0.2")
echo "$headers" | grep -qi "x-request-id: $reqid" \
  || fail "response does not echo X-Request-ID: $headers"
grep -q '"communities"' "$workdir/query.json" || fail "query answered nothing"

# A second identical query exercises the cache-hit path.
curl -sf "http://$addr/api/v1/query?alpha=0.2" >/dev/null

echo "== access log carries the request ID"
grep -q "$reqid" "$workdir/server.log" \
  || fail "request ID $reqid not in the access log"

echo "== scrape /metrics and assert counters moved"
curl -sf "http://$addr/metrics" >"$workdir/metrics.txt"
for family in tc_queries_total tc_query_duration_seconds \
  tc_query_stage_duration_seconds tc_http_requests_total \
  tc_http_request_duration_seconds tc_engine_queries_total \
  tc_engine_shards tc_cache_hits_total tc_slow_queries_total; do
  grep -q "^# TYPE $family " "$workdir/metrics.txt" \
    || fail "family $family missing from /metrics"
done
grep -Eq 'tc_queries_total\{network="",result="miss"\} [1-9]' "$workdir/metrics.txt" \
  || fail "tc_queries_total miss did not move"
grep -Eq 'tc_queries_total\{network="",result="hit"\} [1-9]' "$workdir/metrics.txt" \
  || fail "tc_queries_total hit did not move (cache-hit path)"
grep -Eq 'tc_http_requests_total\{route="/api/v1/query",method="GET",code="200"\} [1-9]' "$workdir/metrics.txt" \
  || fail "tc_http_requests_total did not move"
grep -Eq 'tc_engine_queries_total\{network=""\} [1-9]' "$workdir/metrics.txt" \
  || fail "tc_engine_queries_total did not move"

echo "== slow-query log captured the query"
slowlog=$(curl -sf "http://$addr/api/v1/slowlog")
echo "$slowlog" | grep -q "\"requestId\":\"$reqid\"" \
  || fail "slow log does not carry request ID $reqid: $slowlog"
echo "$slowlog" | grep -q '"plan"' || fail "slow log entry has no plan: $slowlog"

echo "== pprof sidecar"
curl -sf "http://$pprof_addr/debug/pprof/cmdline" >/dev/null \
  || fail "pprof listener not answering on $pprof_addr"

echo "== NDJSON streaming (?stream=1)"
curl -sf "http://$addr/api/v1/query?alpha=0.2&stream=1" >"$workdir/stream.ndjson"
head -1 "$workdir/stream.ndjson" | grep -q '"type":"header"' \
  || fail "stream does not open with a header line: $(head -1 "$workdir/stream.ndjson")"
tail -1 "$workdir/stream.ndjson" | grep -q '"type":"trailer"' \
  || fail "stream does not close with a trailer line: $(tail -1 "$workdir/stream.ndjson")"
grep -q '"type":"community"' "$workdir/stream.ndjson" || fail "stream carried no communities"

echo "== cursor pagination walks the answer"
page=$(curl -sf "http://$addr/api/v1/query?alpha=0.2&limit=1")
echo "$page" | grep -q '"nextCursor"' || fail "limited page minted no cursor: $page"
cur=$(echo "$page" | sed -n 's/.*"nextCursor":"\([^"]*\)".*/\1/p')
curl -sf "http://$addr/api/v1/query?limit=1&cursor=$cur" | grep -q '"communities"' \
  || fail "cursor resume returned no page"

echo "== tcquery -server -stream round trip"
out=$("$workdir/tcquery" -server "http://$addr" -alpha 0.2 -stream)
echo "$out" | grep -q "streaming communities" || fail "tcquery -stream printed no header: $out"
echo "$out" | grep -Eq "stream complete in [0-9]+µs: [1-9][0-9]* communities" \
  || fail "tcquery -stream did not complete: $out"

echo "== tcquery -server round trip"
out=$("$workdir/tcquery" -server "http://$addr" -alpha 0.2 -requestid smoke-cli-1)
echo "$out" | grep -q "request id smoke-cli-1" \
  || fail "tcquery -server did not report the request ID: $out"
echo "$out" | grep -q "theme communities" || fail "tcquery -server answered nothing: $out"

echo "== tcquery -server error path reports the server-assigned request ID"
if err=$("$workdir/tcquery" -server "http://$addr" -network nosuch -alpha 0.2 2>&1); then
  fail "query against unknown network should fail: $err"
fi
echo "$err" | grep -Eq "request id [a-z0-9]+" \
  || fail "error does not carry a server-assigned request ID: $err"

echo "PASS: observability smoke"
