#!/usr/bin/env bash
# End-to-end replication smoke test: one primary, two replicas, real
# processes over real HTTP.
#
#   - tcserver -journal starts a primary whose updates are journaled and
#     applied in memory (checkpoints fold them into the on-disk index);
#   - two replicas bootstrap from a plain file copy of the primary's
#     networks directory and tail GET /api/v1/journal;
#   - updates POSTed to the primary (through tcupdate -server) reach both
#     replicas: /healthz converges to lagRecords 0 at the primary's seq;
#   - converged replicas answer queries byte-identically to the primary
#     (after stripping the volatile queryMicros timing field);
#   - a write to a replica answers 403 with a Location header naming the
#     primary;
#   - the journal feed itself serves the records as NDJSON;
#   - the primary survives a kill -9: restart recovers from journal +
#     checkpoint stamps, the replicas' tailers reconnect, and a post-restart
#     update still converges everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building tools"
go build -o "$workdir/tcgen" ./cmd/tcgen
go build -o "$workdir/tcindex" ./cmd/tcindex
go build -o "$workdir/tcserver" ./cmd/tcserver
go build -o "$workdir/tcupdate" ./cmd/tcupdate

echo "== generating and indexing the bk network"
"$workdir/tcgen" -dataset BK -scale 0.1 -out "$workdir/bk.dbnet"
mkdir -p "$workdir/primary"
"$workdir/tcindex" -in "$workdir/bk.dbnet" -sharded "$workdir/primary/bk.index"
cp "$workdir/bk.dbnet" "$workdir/primary/bk.dbnet"

# Replicas bootstrap from a file copy of the primary's networks directory:
# the snapshot. Everything after it arrives through the journal feed.
cp -r "$workdir/primary" "$workdir/replica1"
cp -r "$workdir/primary" "$workdir/replica2"

# start_server <name> <tcserver flags...>: starts a server, waits for its
# "listening on" line, and leaves the bound address in $ADDR and the pid in
# $SERVER_PID.
start_server() {
  local name=$1; shift
  "$workdir/tcserver" "$@" -quiet >"$workdir/$name.out" 2>"$workdir/$name.log" &
  SERVER_PID=$!
  pids+=("$SERVER_PID")
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$workdir/$name.log" | head -1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "$name died:" >&2; cat "$workdir/$name.log" >&2; exit 1
    fi
    sleep 0.2
  done
  if [ -z "$ADDR" ]; then
    echo "$name never logged its listener:" >&2; cat "$workdir/$name.log" >&2; exit 1
  fi
  echo "== $name listening on $ADDR"
}

start_server primary -networks "$workdir/primary" -journal "$workdir/wal" \
  -checkpoint 500ms -addr 127.0.0.1:0
primary_addr=$ADDR
primary_pid=$SERVER_PID

update() { # update <vertex:items tx> — POST one delta to the primary
  "$workdir/tcupdate" -server "http://$primary_addr" -network bk -addtx "$1" \
    | tee -a "$workdir/updates.out"
}

echo "== journaled update before the replicas exist (replayed from the feed)"
update "0:1,2"
grep -q "journal seq:     1" "$workdir/updates.out" || {
  echo "update response carried no journal seq:" >&2
  cat "$workdir/updates.out" >&2; exit 1
}

start_server replica1 -networks "$workdir/replica1" \
  -replicaof "http://$primary_addr" -checkpoint 500ms -addr 127.0.0.1:0
r1_addr=$ADDR
start_server replica2 -networks "$workdir/replica2" \
  -replicaof "http://$primary_addr" -checkpoint 500ms -addr 127.0.0.1:0
r2_addr=$ADDR

# wait_caught_up <addr> <seq>: poll /healthz until the replica reports
# lagRecords 0 at the wanted journal seq.
wait_caught_up() {
  for _ in $(seq 1 150); do
    if python3 - "$1" "$2" <<'PY' 2>/dev/null
import json, sys, urllib.request
addr, want = sys.argv[1], int(sys.argv[2])
h = json.load(urllib.request.urlopen(f"http://{addr}/healthz", timeout=5))
r = h.get("replication") or {}
sys.exit(0 if r.get("lagRecords") == 0 and r.get("journalSeq") == want else 1)
PY
    then return 0; fi
    sleep 0.2
  done
  echo "replica $1 never converged to seq $2:" >&2
  curl -s "http://$1/healthz" >&2 || true
  exit 1
}

echo "== waiting for both replicas to replay the snapshot gap (seq 1)"
wait_caught_up "$r1_addr" 1
wait_caught_up "$r2_addr" 1

echo "== live update while the replicas tail (seq 2)"
update "1:2,3"
wait_caught_up "$r1_addr" 2
wait_caught_up "$r2_addr" 2

# compare <path>: the primary's answer and both replicas' answers must be
# byte-identical after dropping the volatile timing field.
compare() {
  python3 - "$primary_addr" "$r1_addr" "$r2_addr" "$1" <<'PY'
import json, sys, urllib.request
primary, r1, r2, path = sys.argv[1:5]
def fetch(addr):
    d = json.load(urllib.request.urlopen(f"http://{addr}{path}", timeout=10))
    d.pop("queryMicros", None)
    return json.dumps(d, sort_keys=True)
want = fetch(primary)
for addr in (r1, r2):
    got = fetch(addr)
    if got != want:
        print(f"answer diverges on {addr}{path}\n primary: {want}\n replica: {got}", file=sys.stderr)
        sys.exit(1)
PY
  echo "   identical answers for $1"
}

echo "== replicas answer byte-identically to the primary"
compare "/api/v1/bk/query?alpha=0"
compare "/api/v1/bk/query?pattern=1,2&alpha=0"
compare "/api/v1/bk/query?alpha=0&k=5"

echo "== a write to a replica is rejected with 403 + Location"
code=$(curl -s -D "$workdir/403.hdr" -o "$workdir/403.out" \
  -X POST -d '{"addTransactions":[{"vertex":0,"items":["1"]}]}' \
  "http://$r1_addr/api/v1/bk/update")
grep -q "^HTTP/1.1 403" "$workdir/403.hdr" || {
  echo "replica write was not 403:" >&2; cat "$workdir/403.hdr" "$workdir/403.out" >&2; exit 1
}
grep -qi "^Location: http://$primary_addr/api/v1/bk/update" "$workdir/403.hdr" || {
  echo "replica 403 carried no Location to the primary:" >&2; cat "$workdir/403.hdr" >&2; exit 1
}
grep -q '"error"' "$workdir/403.out" || {
  echo "replica 403 carried no JSON error envelope:" >&2; cat "$workdir/403.out" >&2; exit 1
}

echo "== the journal feed serves the records as NDJSON"
curl -s "http://$primary_addr/api/v1/journal?from=0" >"$workdir/journal.ndjson"
records=$(grep -c '"type":"record"' "$workdir/journal.ndjson")
[ "$records" -eq 2 ] || {
  echo "journal feed served $records records, want 2:" >&2
  cat "$workdir/journal.ndjson" >&2; exit 1
}
grep -q '"type":"head"' "$workdir/journal.ndjson" || {
  echo "journal feed missing the head frame:" >&2; cat "$workdir/journal.ndjson" >&2; exit 1
}

echo "== primary crash (kill -9) and recovery"
kill -9 "$primary_pid"
wait "$primary_pid" 2>/dev/null || true
start_server primary-restarted -networks "$workdir/primary" -journal "$workdir/wal" \
  -checkpoint 500ms -addr "$primary_addr"
grep -q "recovery replayed" "$workdir/primary-restarted.log" || {
  echo "restarted primary did not report journal recovery:" >&2
  cat "$workdir/primary-restarted.log" >&2; exit 1
}

echo "== post-restart update converges on the reconnected replicas (seq 3)"
update "2:1,4"
wait_caught_up "$r1_addr" 3
wait_caught_up "$r2_addr" 3
compare "/api/v1/bk/query?alpha=0"
compare "/api/v1/bk/query?alpha=0&k=5"

echo "== replication smoke test passed"
