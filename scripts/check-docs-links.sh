#!/bin/sh
# check-docs-links.sh verifies that every relative markdown link in README.md
# and docs/*.md (every markdown file in docs/, including ones added by new
# PRs) resolves to an existing file, and that every intra-doc anchor —
# "#section" within a file or "other.md#section" across files — names a real
# heading in its target. Absolute http(s) URLs are skipped. Exits non-zero
# listing the broken links.
set -eu

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# anchors_of prints the GitHub-style anchor slug of every heading in a
# markdown file: lowercase, punctuation stripped, spaces to hyphens.
anchors_of() {
	grep -E '^#{1,6} ' "$1" | sed -E 's/^#+ +//; s/[[:space:]]+$//' |
		tr '[:upper:]' '[:lower:]' |
		sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

# has_anchor target frag: does the markdown file contain the anchor? A
# trailing -N disambiguates duplicate headings on GitHub, so the bare slug is
# accepted for it too.
has_anchor() {
	base=$(printf '%s' "$2" | sed -E 's/-[0-9]+$//')
	anchors_of "$1" | grep -qx -e "$2" -e "$base"
}

for f in README.md docs/*.md; do
	dir=$(dirname "$f")
	grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//' | while IFS= read -r link; do
		case "$link" in
		http://* | https://* | mailto:*) continue ;;
		esac
		target=${link%%#*}
		frag=""
		case "$link" in
		*"#"*) frag=${link#*#} ;;
		esac
		# Resolve the link target: same file for pure-anchor links, else
		# relative to the linking file (with a repo-root fallback).
		resolved=""
		if [ -z "$target" ]; then
			resolved=$f
		elif [ -e "$dir/$target" ]; then
			resolved="$dir/$target"
		elif [ -e "$target" ]; then
			resolved=$target
		else
			echo "$f: broken link: $link" >&2
			echo "$f: $link" >>"$tmp"
			continue
		fi
		# Anchor check, for anchors into markdown files only.
		if [ -n "$frag" ]; then
			case "$resolved" in
			*.md)
				if ! has_anchor "$resolved" "$frag"; then
					echo "$f: broken anchor: $link (no heading #$frag in $resolved)" >&2
					echo "$f: $link" >>"$tmp"
				fi
				;;
			esac
		fi
	done
done

# Required docs: the documentation set core workflows point at. A rename or
# deletion must update this list (and every inbound link) deliberately.
for required in docs/ARCHITECTURE.md docs/API.md docs/FORMAT.md \
	docs/OBSERVABILITY.md docs/STATIC_ANALYSIS.md; do
	if [ ! -e "$required" ]; then
		echo "missing required doc: $required" >&2
		echo "missing: $required" >>"$tmp"
	fi
done

# Orphan check: every doc must be reachable — linked by name from README.md
# or from a sibling doc — or nobody will ever find it.
for f in docs/*.md; do
	name=$(basename "$f")
	if ! grep -l "$name" README.md docs/*.md | grep -qv "^$f\$"; then
		echo "orphaned doc: $f is linked from nowhere" >&2
		echo "orphan: $f" >>"$tmp"
	fi
done

if [ -s "$tmp" ]; then
	echo "broken documentation links found" >&2
	exit 1
fi
echo "all documentation links and anchors resolve"
