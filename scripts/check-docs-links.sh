#!/bin/sh
# check-docs-links.sh verifies that every relative markdown link in README.md
# and docs/*.md resolves to an existing file (anchors are stripped; absolute
# http(s) URLs are skipped). Exits non-zero listing the broken links.
set -eu

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

for f in README.md docs/*.md; do
	dir=$(dirname "$f")
	grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//' | while IFS= read -r link; do
		case "$link" in
		http://* | https://* | mailto:* | "#"*) continue ;;
		esac
		target=${link%%#*}
		[ -z "$target" ] && continue
		if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
			echo "$f: broken link: $link" >&2
			echo "$f: $link" >>"$tmp"
		fi
	done
done

if [ -s "$tmp" ]; then
	echo "broken documentation links found" >&2
	exit 1
fi
echo "all documentation links resolve"
