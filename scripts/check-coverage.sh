#!/bin/sh
# check-coverage.sh runs the internal packages with -coverprofile, prints the
# per-package coverage table, and fails if any package in the FLOORS table
# drops below its pinned floor:
#
#   internal/engine      — the concurrency-critical serving layer
#   internal/delta       — the incremental-maintenance format and apply path
#   internal/federation  — the cross-network merge and shared-resource layer
#
# Override a floor with <PKG>_COVERAGE_FLOOR=NN.N (bare percentage), e.g.
# ENGINE_COVERAGE_FLOOR=90 or FEDERATION_COVERAGE_FLOOR=75.
set -eu

PROFILE="${COVERAGE_PROFILE:-coverage.out}"

FLOORS="
themecomm/internal/engine ${ENGINE_COVERAGE_FLOOR:-85.0}
themecomm/internal/delta ${DELTA_COVERAGE_FLOOR:-80.0}
themecomm/internal/federation ${FEDERATION_COVERAGE_FLOOR:-80.0}
"

out=$(go test -coverprofile="$PROFILE" ./internal/...)
echo "$out"
echo
echo "per-package coverage:"
echo "$out" | awk '/coverage:/ { for (i = 1; i <= NF; i++) if ($i ~ /%/) printf "  %-40s %s\n", $2, $i }'
echo

failed=0
echo "$FLOORS" | while read -r pkg floor; do
	[ -n "$pkg" ] || continue
	got=$(echo "$out" | awk -v pkg="$pkg" '$2 == pkg { for (i = 1; i <= NF; i++) if ($i ~ /%/) { gsub("%", "", $i); print $i } }')
	if [ -z "$got" ]; then
		echo "FAIL: no coverage reported for $pkg" >&2
		exit 1
	fi
	if awk -v got="$got" -v floor="$floor" 'BEGIN { exit !(got + 0 < floor + 0) }'; then
		echo "FAIL: $pkg coverage ${got}% is below the ${floor}% floor" >&2
		exit 1
	fi
	echo "$pkg coverage ${got}% meets the ${floor}% floor"
done || failed=1

exit "$failed"
