#!/bin/sh
# check-coverage.sh runs the internal packages with -coverprofile, prints the
# per-package coverage table, and fails if themecomm/internal/engine — the
# concurrency-critical serving layer — drops below the pinned floor.
# Override the floor with ENGINE_COVERAGE_FLOOR=NN.N (a bare percentage).
set -eu

FLOOR="${ENGINE_COVERAGE_FLOOR:-85.0}"
PROFILE="${COVERAGE_PROFILE:-coverage.out}"

out=$(go test -coverprofile="$PROFILE" ./internal/...)
echo "$out"
echo
echo "per-package coverage:"
echo "$out" | awk '/coverage:/ { for (i = 1; i <= NF; i++) if ($i ~ /%/) printf "  %-40s %s\n", $2, $i }'

engine=$(echo "$out" | awk '$2 == "themecomm/internal/engine" { for (i = 1; i <= NF; i++) if ($i ~ /%/) { gsub("%", "", $i); print $i } }')
if [ -z "$engine" ]; then
	echo "error: no coverage reported for themecomm/internal/engine" >&2
	exit 1
fi

echo
if awk -v got="$engine" -v floor="$FLOOR" 'BEGIN { exit !(got + 0 < floor + 0) }'; then
	echo "FAIL: internal/engine coverage ${engine}% is below the ${FLOOR}% floor" >&2
	exit 1
fi
echo "internal/engine coverage ${engine}% meets the ${FLOOR}% floor"
