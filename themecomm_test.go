package themecomm_test

import (
	"bytes"
	"testing"

	"themecomm"
)

// buildDemoNetwork constructs a small social e-commerce network through the
// public API only: two buying circles, one around {diapers, beer} and one
// around {camera, tripod}, joined by a few weak ties.
func buildDemoNetwork(t *testing.T) (*themecomm.Network, *themecomm.Dictionary) {
	t.Helper()
	dict := themecomm.NewDictionary()
	diapers := dict.Intern("diapers")
	beer := dict.Intern("beer")
	camera := dict.Intern("camera")
	tripod := dict.Intern("tripod")
	snacks := dict.Intern("snacks")

	nw := themecomm.NewNetwork(8)
	// Circle A: vertices 0-3 form a clique.
	for u := themecomm.VertexID(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			nw.MustAddEdge(u, v)
		}
	}
	// Circle B: vertices 4-7 form a clique.
	for u := themecomm.VertexID(4); u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			nw.MustAddEdge(u, v)
		}
	}
	// Weak tie between the circles.
	nw.MustAddEdge(3, 4)

	addTx := func(v themecomm.VertexID, items ...themecomm.Item) {
		if err := nw.AddTransaction(v, themecomm.NewItemset(items...)); err != nil {
			t.Fatalf("AddTransaction: %v", err)
		}
	}
	for v := themecomm.VertexID(0); v < 4; v++ {
		for i := 0; i < 4; i++ {
			addTx(v, diapers, beer)
		}
		addTx(v, snacks)
	}
	for v := themecomm.VertexID(4); v < 8; v++ {
		for i := 0; i < 4; i++ {
			addTx(v, camera, tripod)
		}
		addTx(v, snacks)
	}
	return nw, dict
}

func TestPublicAPIMiningFlow(t *testing.T) {
	nw, dict := buildDemoNetwork(t)

	comms := themecomm.FindThemeCommunities(nw, 0.5)
	if len(comms) == 0 {
		t.Fatalf("expected theme communities")
	}
	// The {diapers, beer} circle must appear as a community of 4 vertices.
	diapers, _ := dict.Lookup("diapers")
	beer, _ := dict.Lookup("beer")
	target := themecomm.NewItemset(diapers, beer)
	found := false
	for _, c := range comms {
		if c.Pattern.Equal(target) && len(c.Vertices()) == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("the diapers+beer circle was not found: %v", comms)
	}

	// The three miners agree.
	exact := themecomm.MineTCS(nw, themecomm.MiningOptions{Alpha: 0.5})
	tcfa := themecomm.MineTCFA(nw, themecomm.MiningOptions{Alpha: 0.5})
	tcfi := themecomm.MineTCFI(nw, themecomm.MiningOptions{Alpha: 0.5})
	if !exact.Equal(tcfa) || !tcfa.Equal(tcfi) {
		t.Fatalf("miners disagree through the public API")
	}
}

func TestPublicAPITrussAndDecomposition(t *testing.T) {
	nw, dict := buildDemoNetwork(t)
	diapers, _ := dict.Lookup("diapers")
	beer, _ := dict.Lookup("beer")
	p := themecomm.NewItemset(diapers, beer)

	tn := themecomm.InduceThemeNetwork(nw, p)
	if tn.NumVertices() != 4 {
		t.Fatalf("theme network of %v has %d vertices, want 4", p, tn.NumVertices())
	}
	tr := themecomm.DetectMaximalPatternTruss(nw, p, 0.5)
	if tr.Empty() || tr.NumVertices() != 4 {
		t.Fatalf("maximal pattern truss wrong: %v", tr)
	}
	d := themecomm.DecomposePattern(nw, p)
	if d.Empty() {
		t.Fatalf("decomposition should not be empty")
	}
	if !d.TrussAt(0.5).Edges.Equal(tr.Edges) {
		t.Fatalf("decomposition reconstruction disagrees with direct detection")
	}
}

func TestPublicAPIIndexAndQuery(t *testing.T) {
	nw, dict := buildDemoNetwork(t)
	tree := themecomm.BuildTree(nw, themecomm.TreeBuildOptions{})
	if tree.NumNodes() == 0 {
		t.Fatalf("tree should index the demo patterns")
	}
	camera, _ := dict.Lookup("camera")
	tripod, _ := dict.Lookup("tripod")
	qr := tree.Query(themecomm.NewItemset(camera, tripod), 0.5)
	if qr.RetrievedNodes == 0 {
		t.Fatalf("query should retrieve the camera circle")
	}

	// Serialization round trip through the public API.
	var buf bytes.Buffer
	if err := tree.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := themecomm.ReadTree(&buf)
	if err != nil {
		t.Fatalf("ReadTree: %v", err)
	}
	if got.NumNodes() != tree.NumNodes() {
		t.Fatalf("tree round trip lost nodes")
	}
}

func TestPublicAPINetworkSerialization(t *testing.T) {
	nw, dict := buildDemoNetwork(t)
	var buf bytes.Buffer
	if err := themecomm.WriteNetwork(&buf, nw, dict); err != nil {
		t.Fatalf("WriteNetwork: %v", err)
	}
	got, gotDict, err := themecomm.ReadNetwork(&buf)
	if err != nil {
		t.Fatalf("ReadNetwork: %v", err)
	}
	if got.Stats() != nw.Stats() {
		t.Fatalf("network round trip changed statistics")
	}
	if gotDict.Len() != dict.Len() {
		t.Fatalf("dictionary round trip lost names")
	}
}

func TestPublicAPIGenerateDataset(t *testing.T) {
	for _, name := range []string{"BK", "GW", "AMINER", "SYN"} {
		d, err := themecomm.GenerateDataset(name, 0.05)
		if err != nil {
			t.Fatalf("GenerateDataset(%s): %v", name, err)
		}
		if d.Network.NumVertices() == 0 || d.Network.NumEdges() == 0 {
			t.Fatalf("dataset %s is degenerate", name)
		}
	}
	if _, err := themecomm.GenerateDataset("unknown", 1); err == nil {
		t.Fatalf("unknown dataset should be rejected")
	}
}
